open Chaoschain_x509
open Chaoschain_pki

type audience = For_ca | For_http_server | For_administrator

let audience_to_string = function
  | For_ca -> "Certificate Authority"
  | For_http_server -> "HTTP server"
  | For_administrator -> "web administrator"

type advice = {
  audience : audience;
  severity : [ `Must | `Should ];
  text : string;
}

let server_advice report =
  let order = report.Compliance.order in
  let completeness = report.Compliance.completeness in
  let advices = ref [] in
  let add audience severity text = advices := { audience; severity; text } :: !advices in
  if not (Leaf_check.compliant report.Compliance.leaf) then
    add For_administrator `Must
      "place the server (end-entity) certificate first in the configured chain \
       file and make sure its names cover the served domain";
  if Order_check.has_duplicates order then begin
    add For_administrator `Must
      "remove duplicated certificates: the leaf belongs in the certificate \
       file only, never repeated in the chain/bundle file";
    add For_http_server `Should
      "reject duplicate leaf certificates at configuration time, as \
       Microsoft-Azure-Application-Gateway does"
  end;
  if Order_check.has_irrelevant order then
    add For_administrator `Must
      "remove certificates unrelated to the served leaf (stale renewals, \
       other sites' chains, spare roots)";
  if Order_check.has_reversed order then begin
    add For_administrator `Must
      "reorder the chain into issuance order: leaf first, each following \
       certificate certifying the one before it";
    add For_ca `Must
      "deliver ca-bundle files in issuance order with per-server installation \
       instructions; reversed bundles are the dominant cause of reversed \
       deployments"
  end;
  if order.Order_check.multiple_paths && not (Order_check.has_reversed order) then
    add For_administrator `Should
      "when serving cross-signed alternatives, insert each variant after the \
       certificate it certifies so every path stays in issuance order";
  (match completeness.Completeness.verdict with
  | Completeness.Incomplete ->
      add For_administrator `Must
        "include every intermediate certificate: clients without AIA fetching \
         cannot complete the chain";
      (match completeness.Completeness.cause with
      | Some Completeness.Aia_missing ->
          add For_ca `Should
            "embed caIssuers AIA URIs in issued certificates so capable \
             clients can self-repair incomplete deployments"
      | Some Completeness.Aia_fetch_failed ->
          add For_ca `Must "keep the caIssuers distribution endpoint available"
      | Some Completeness.Aia_wrong_cert ->
          add For_ca `Must
            "serve the *issuer's* certificate at the caIssuers URI, not the \
             certificate itself"
      | _ -> ())
  | _ -> ());
  if !advices <> [] then
    add For_administrator `Should
      "adopt automated certificate management (ACME): automation deploys \
       compliant chains and renews them on time";
  List.rev !advices

let corrected_chain report =
  match Topology.paths report.Compliance.topology with
  | [] -> None
  | paths ->
      let complete =
        List.find_opt
          (fun path ->
            Cert.is_self_signed
              (List.nth path (List.length path - 1)).Topology.cert)
          paths
      in
      let path = match complete with Some p -> Some p | None -> List.nth_opt paths 0 in
      (match (path, report.Compliance.completeness.Completeness.verdict) with
      | _, Completeness.Incomplete -> None
      | Some path, _ -> Some (List.map (fun n -> n.Topology.cert) path)
      | None, _ -> None)

let recommended_params = Build_params.rfc4158

type ablation_step = {
  label : string;
  params : Build_params.t;
  accepted : int;
  total : int;
}

let capability_ablation ~store ~aia ~now corpus =
  let base =
    { Build_params.rfc4158 with
      Build_params.reorder = false;
      aia_fetch = false;
      backtracking = false }
  in
  let ladder =
    [ ("none of the three capabilities", base);
      ("+ order reorganization", { base with Build_params.reorder = true });
      ("+ AIA completion",
       { base with Build_params.reorder = true; aia_fetch = true });
      ("+ backtracking (all three)",
       { base with Build_params.reorder = true; aia_fetch = true;
         backtracking = true });
      ("full recommended profile", Build_params.rfc4158) ]
  in
  List.map
    (fun (label, params) ->
      let ctx =
        { Path_builder.params; store;
          aia = (if params.Build_params.aia_fetch then Some aia else None);
          cache = []; crls = None; now }
      in
      let accepted =
        List.fold_left
          (fun acc (domain, chain) ->
            if Engine.accepted (Engine.run ctx ~host:(Some domain) chain) then acc + 1
            else acc)
          0 corpus
      in
      { label; params; accepted; total = List.length corpus })
    ladder

type ambiguity_stats = {
  chains_with_ties : int;
  tie_with_trusted_root : int;
  tie_validity_variants : int;
}

(* Candidates with identical subject DN and identical SKID, both plausibly
   issuing some certificate of the chain. *)
let ambiguity_statistics ~store corpus =
  let stats = ref { chains_with_ties = 0; tie_with_trusted_root = 0; tie_validity_variants = 0 } in
  List.iter
    (fun (_, chain) ->
      let topo = Topology.build chain in
      let nodes = Topology.nodes topo in
      let tie = ref false and trusted = ref false and validity = ref false in
      List.iter
        (fun child ->
          let candidates =
            List.filter
              (fun n ->
                n.Topology.index <> child.Topology.index
                && Relation.issued_by_name ~issuer:n.Topology.cert
                     ~child:child.Topology.cert
                && Relation.kid_status ~issuer:n.Topology.cert
                     ~child:child.Topology.cert
                   <> Relation.Kid_mismatch)
              nodes
            @ List.map
                (fun c ->
                  { Topology.index = -1; cert = c; occurrences = [] })
                (Root_store.issuer_candidates store child.Topology.cert)
          in
          (* Deduplicate bit-identical candidates (in-list root vs store). *)
          let uniq =
            List.sort_uniq
              (fun a b -> Cert.compare a.Topology.cert b.Topology.cert)
              candidates
          in
          if List.length uniq > 1 then begin
            tie := true;
            if List.exists
                 (fun n ->
                   Cert.is_self_signed n.Topology.cert
                   && Root_store.mem store n.Topology.cert)
                 uniq
            then trusted := true
            else if
              List.exists
                (fun a ->
                  List.exists
                    (fun b ->
                      a.Topology.index <> b.Topology.index
                      && Dn.equal (Cert.subject a.Topology.cert)
                           (Cert.subject b.Topology.cert)
                      && not
                           (Vtime.equal
                              (Cert.not_before a.Topology.cert)
                              (Cert.not_before b.Topology.cert)))
                    uniq)
                uniq
            then validity := true
          end)
        nodes;
      if !tie then
        stats :=
          { chains_with_ties = !stats.chains_with_ties + 1;
            tie_with_trusted_root =
              (!stats.tie_with_trusted_root + if !trusted then 1 else 0);
            tie_validity_variants =
              (!stats.tie_validity_variants + if !validity then 1 else 0) })
    corpus;
  !stats
