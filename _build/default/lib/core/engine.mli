(** The complete client pipeline: path construction, path validation, and —
    for clients that have it — backtracking across candidate paths.

    This is the two-step processing of Figure 1 with the client-specific
    glue the paper observed: OpenSSL-style construct-then-validate,
    MbedTLS-style partial validation during construction (handled inside
    {!Path_builder}), and CryptoAPI/browser-style retry of the next candidate
    path when validation rejects the current one. *)

open Chaoschain_x509

type error =
  | Build of Path_builder.error
  | Validate of Path_validate.error

val error_to_string : error -> string

type outcome = {
  result : (Cert.t list, error) result;
      (** the accepted path, or the error of the first attempted path (what
          real clients report) *)
  attempts : int;          (** structurally complete paths examined *)
  constructed : Cert.t list option;
      (** the first structurally complete path, even if rejected — what the
          capability tests observe to infer priority preferences *)
  accepted_attempt : Path_builder.attempt option;
      (** metadata of the accepted path (AIA/cache use), when validation
          succeeded *)
}

val run :
  Path_builder.context -> host:string option -> Cert.t list -> outcome

val accepted : outcome -> bool
