(** Leaf-certificate placement analysis (section 3.1 / Table 3).

    RFC 5246 and RFC 8446 require the server certificate first in the list
    but give no criterion for recognising a leaf; like the paper, we classify
    by whether the first certificate's CN/SAN matches the scanned domain, and
    failing that whether those fields are at least formatted as a domain name
    or IP address. *)

open Chaoschain_x509

type verdict =
  | Correct_matched      (** first cert matches the domain *)
  | Correct_mismatched   (** first cert has domain/IP-shaped names, but they
                             do not match the scanned domain *)
  | Incorrect_matched    (** a later certificate matches the domain *)
  | Incorrect_mismatched (** a later certificate is domain/IP-shaped *)
  | Other                (** nothing domain-shaped anywhere: empty CNs, test
                             certificates (Plesk, localhost, ...) *)

val verdict_to_string : verdict -> string

val is_domain_shaped : string -> bool
(** Heuristic "formatted as a domain name": dotted labels of LDH characters
    (wildcard first label allowed), at least two labels, alphabetic TLD. *)

val is_ip_shaped : string -> bool
(** Dotted-quad IPv4 text. *)

val names_of : Cert.t -> string list
(** Subject CN (if any) plus SAN dNSNames and iPAddresses — the fields the
    classification inspects. *)

val classify : domain:string -> Cert.t list -> verdict

val compliant : verdict -> bool
(** Only the two [Correct_*] verdicts satisfy the placement rule. *)
