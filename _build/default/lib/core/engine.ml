open Chaoschain_x509

type error = Build of Path_builder.error | Validate of Path_validate.error

let error_to_string = function
  | Build e -> "build: " ^ Path_builder.error_to_string e
  | Validate e -> "validate: " ^ Path_validate.error_to_string e

type outcome = {
  result : (Cert.t list, error) result;
  attempts : int;
  constructed : Cert.t list option;
  accepted_attempt : Path_builder.attempt option;
}

let accepted o = Result.is_ok o.result

let run (ctx : Path_builder.context) ~host certs =
  match Path_builder.build ctx certs with
  | Error e ->
      { result = Error (Build e); attempts = 0; constructed = None;
        accepted_attempt = None }
  | Ok attempts_seq ->
      let max_attempts =
        if ctx.Path_builder.params.Build_params.backtracking then
          ctx.Path_builder.params.Build_params.max_attempts
        else 1
      in
      let store = ctx.Path_builder.store in
      let now = ctx.Path_builder.now in
      let crls =
        match ctx.Path_builder.params.Build_params.revocation with
        | Build_params.During_validation -> ctx.Path_builder.crls
        | Build_params.No_revocation | Build_params.During_construction -> None
      in
      let no_issuer () =
        match Path_builder.first_dead_end ctx certs with
        | Some dn -> Path_builder.No_issuer_found dn
        | None -> (
            match certs with
            | [] -> Path_builder.Empty_chain
            | leaf :: _ -> Path_builder.No_issuer_found (Cert.issuer leaf))
      in
      let rec consume seq n first_error first_path =
        let finish () =
          { result =
              (match first_error with
              | Some e -> Error (Validate e)
              | None -> Error (Build (no_issuer ())));
            attempts = n;
            constructed = first_path;
            accepted_attempt = None }
        in
        if n >= max_attempts then finish ()
        else
          match seq () with
          | Seq.Nil -> finish ()
          | Seq.Cons (attempt, rest) -> (
              let path = attempt.Path_builder.path in
              let first_path =
                match first_path with Some _ -> first_path | None -> Some path
              in
              match Path_validate.validate ?crls ~store ~now ~host path with
              | Ok () ->
                  { result = Ok path; attempts = n + 1; constructed = first_path;
                    accepted_attempt = Some attempt }
              | Error e ->
                  let first_error =
                    match first_error with Some _ -> first_error | None -> Some e
                  in
                  consume rest (n + 1) first_error first_path)
      in
      consume attempts_seq 0 None None
