open Chaoschain_x509

type verdict =
  | Correct_matched
  | Correct_mismatched
  | Incorrect_matched
  | Incorrect_mismatched
  | Other

let verdict_to_string = function
  | Correct_matched -> "correctly placed, matched"
  | Correct_mismatched -> "correctly placed, mismatched"
  | Incorrect_matched -> "incorrectly placed, matched"
  | Incorrect_mismatched -> "incorrectly placed, mismatched"
  | Other -> "other"

let is_ip_shaped s =
  match String.split_on_char '.' s with
  | [ a; b; c; d ] ->
      let octet x =
        match int_of_string_opt x with Some v -> v >= 0 && v <= 255 | None -> false
      in
      octet a && octet b && octet c && octet d
  | _ -> false

let is_domain_shaped s =
  let s = String.lowercase_ascii s in
  match String.split_on_char '.' s with
  | ([] | [ _ ]) -> false
  | labels ->
      let label_ok ~first l =
        (first && String.equal l "*")
        || (String.length l > 0
           && String.for_all (function 'a' .. 'z' | '0' .. '9' | '-' -> true | _ -> false) l
           && l.[0] <> '-'
           && l.[String.length l - 1] <> '-')
      in
      let rec check first = function
        | [] -> true
        | [ tld ] ->
            String.length tld >= 2
            && String.for_all (function 'a' .. 'z' -> true | _ -> false) tld
        | l :: rest -> label_ok ~first l && check false rest
      in
      check true labels

let names_of cert =
  let cn = match Dn.common_name (Cert.subject cert) with Some c -> [ c ] | None -> [] in
  let san_names =
    List.filter_map
      (function Extension.Dns d -> Some d | Extension.Ip ip -> Some ip | _ -> None)
      (Cert.san cert)
  in
  cn @ san_names

let matches_domain cert domain = Cert.matches_hostname cert domain

let domain_or_ip_shaped cert =
  List.exists (fun n -> is_domain_shaped n || is_ip_shaped n) (names_of cert)

let classify ~domain certs =
  match certs with
  | [] -> Other
  | first :: rest ->
      if matches_domain first domain then Correct_matched
      else if domain_or_ip_shaped first then Correct_mismatched
      else if List.exists (fun c -> matches_domain c domain) rest then Incorrect_matched
      else if List.exists domain_or_ip_shaped rest then Incorrect_mismatched
      else Other

let compliant = function
  | Correct_matched | Correct_mismatched -> true
  | Incorrect_matched | Incorrect_mismatched | Other -> false
