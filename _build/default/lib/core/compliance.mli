(** Combined structural-compliance verdict for one server deployment — the
    paper's definition in section 3: leaf first, issuance order respected,
    and all non-root certificates present. *)

open Chaoschain_x509
open Chaoschain_pki

type report = {
  domain : string;
  leaf : Leaf_check.verdict;
  order : Order_check.report;
  completeness : Completeness.report;
  topology : Topology.t;
}

val analyze :
  ?aia_enabled:bool ->
  store:Root_store.t -> aia:Aia_repo.t -> domain:string -> Cert.t list -> report

val compliant : report -> bool
(** All three checks pass. *)

val non_compliance_reasons : report -> string list

val pp_report : Format.formatter -> report -> unit
(** Multi-line audit output (used by the CLI's [analyze] command). *)
