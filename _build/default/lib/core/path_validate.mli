(** RFC 5280-style certification-path validation over a constructed path.

    Validation is deliberately separate from construction (Figure 1's two
    steps). The checks cover what the paper's experiments exercise: trust
    anchoring, signature chaining, validity windows, CA-ness, KeyUsage,
    pathLenConstraint and hostname matching. *)

open Chaoschain_x509
open Chaoschain_pki

type error =
  | Untrusted_root of Dn.t     (** terminal root not in the trust store *)
  | Self_signed_leaf           (** the path is a single self-signed cert *)
  | Expired of int             (** certificate at this path index *)
  | Not_yet_valid of int
  | Bad_signature of int       (** index of the certificate whose signature
                                   its issuer's key does not verify *)
  | Not_a_ca of int
  | Path_len_exceeded of int   (** index of the violated constraint *)
  | Bad_key_usage of int
  | Revoked of int             (** certificate at this path index is on its
                                   issuer's CRL *)
  | Hostname_mismatch of string

val error_to_string : error -> string

val validate :
  ?crls:Crl_registry.t ->
  store:Root_store.t -> now:Vtime.t -> host:string option ->
  Cert.t list -> (unit, error) result
(** [validate ~store ~now ~host path] checks the leaf-first path. The
    terminal certificate must be in [store] (trust anchors are exempt from
    the validity check some clients apply, so the anchor's expiry is not
    examined). [host], when given, must match the leaf. When [crls] is given,
    every non-anchor certificate is checked against its issuer's CRL;
    unavailable or stale CRLs soft-fail as real clients do. *)
