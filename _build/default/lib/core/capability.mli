(** The nine chain-construction capability tests of Table 2, and the
    black-box evaluation that infers a client's Table 9 row.

    Each test mints a self-contained laboratory PKI, serves a crafted
    certificate list, and infers the capability or priority preference from
    the path the client constructs (not from its configuration — the client
    profile is exercised exactly as a real implementation would be). *)

open Chaoschain_x509
open Chaoschain_pki

type test_id =
  | Order_reorganization
  | Redundancy_elimination
  | Aia_completion
  | Validity_priority
  | Kid_priority
  | Keyusage_priority
  | Basic_constraints_priority
  | Path_length_constraint
  | Self_signed_leaf

val all_tests : test_id list
val test_name : test_id -> string
val test_description : test_id -> string
val test_case_notation : test_id -> string
(** The formal description column of Table 2, e.g. ["{E, I2, I1, R}"]. *)

type fixture = {
  host : string;
  served : Cert.t list;
  store : Root_store.t;
  aia : Aia_repo.t;
  cache : Cert.t list;
  now : Vtime.t;
  labelled : (string * Cert.t) list;
      (** name -> certificate, for identifying which candidate was chosen *)
}

val fixture : test_id -> fixture
(** Deterministic: the same test always produces bit-identical PKI. For
    {!Path_length_constraint} this is the depth-40 instance; use
    {!length_fixture} for other depths. *)

val length_fixture : int -> fixture
(** [length_fixture n]: the ordered complete chain with [n] intermediates. *)

val run_client : Clients.t -> fixture -> Engine.outcome

val evaluate : Clients.t -> test_id -> string
(** The Table 9 cell for this client and test: ["yes"]/["no"] for basic
    capabilities and the self-signed-leaf restriction, ["VP1"]/["VP2"]/["-"],
    ["KP1"]/["KP2"]/["-"], ["KUP"]/["-"], ["BP"]/["-"], and ["=N"]/[">52"]
    for the length limit. *)

val evaluate_all : Clients.t -> (test_id * string) list

val table9_expected : Clients.id -> test_id -> string
(** The cell the paper reports, for regression-testing the profiles. *)

(** {1 Table 1 — comparison with BetterTLS} *)

type coverage = { capability : string; better_tls : bool; this_work : bool }

val betterlts_comparison : coverage list
