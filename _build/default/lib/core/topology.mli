(** The issuance-topology graph of a server-provided certificate list
    (section 3.1 of the paper).

    Certificates are laid out in server order; bit-for-bit duplicates collapse
    onto the first occurrence (relabelled [Cp\[i\]] as in Figure 2d); edges
    follow the paper's flexible issuance relation. All order and completeness
    analyses run over this graph. *)

open Chaoschain_x509

type node = {
  index : int;             (** position of the first occurrence in the list *)
  cert : Cert.t;
  occurrences : int list;  (** every list position holding this certificate *)
}

type t

val build : Cert.t list -> t
(** Raises [Invalid_argument] on an empty list. *)

val certs : t -> Cert.t list
(** The original list, verbatim. *)

val nodes : t -> node list
(** Unique certificates in first-occurrence order. *)

val node_count : t -> int
val list_length : t -> int

val duplicates : t -> node list
(** Nodes appearing more than once. *)

val leaf : t -> node
(** The node at list position 0 — the server's claimed leaf. *)

val issuer_edges : t -> node -> node list
(** Nodes that (flexibly) issued the given node's certificate, excluding
    self-loops. *)

val paths : t -> node list list
(** All maximal simple paths that start at {!leaf} and follow issuer edges.
    A path stops extending at a self-signed certificate or when every issuer
    candidate already occurs on the path (cross-sign cycles terminate
    cleanly, per the CVE-2024-0567 concern). Paths are returned leaf first. *)

val reachable_from_leaf : t -> node list
(** Nodes on at least one leaf path (including the leaf). *)

val irrelevant : t -> node list
(** Nodes unreachable from the leaf — the paper's irrelevant certificates. *)

val render : t -> string
(** ASCII rendering in the style of Figure 2: one line of labelled nodes plus
    one line per issuance edge. *)

val render_label : t -> node -> string
(** ["4\[1\]"]-style label used by {!render}. *)
