lib/deployment/ca_vendor.ml: Cert Chaoschain_pki Chaoschain_x509 Issue List Pem String Universe
