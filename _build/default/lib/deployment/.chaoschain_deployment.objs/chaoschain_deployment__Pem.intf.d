lib/deployment/pem.mli: Cert Chaoschain_x509
