lib/deployment/admin.mli: Ca_vendor Cert Chaoschain_crypto Chaoschain_pki Chaoschain_x509 Http_server Issue Universe
