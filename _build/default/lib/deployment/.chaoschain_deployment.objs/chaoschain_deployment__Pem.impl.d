lib/deployment/pem.ml: Base64 Buffer Cert Chaoschain_x509 List Printf Result String
