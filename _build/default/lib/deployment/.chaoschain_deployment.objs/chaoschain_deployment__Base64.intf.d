lib/deployment/base64.mli:
