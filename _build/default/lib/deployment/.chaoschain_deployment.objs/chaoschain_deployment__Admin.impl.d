lib/deployment/admin.ml: Array Ca_vendor Cert Chaoschain_crypto Chaoschain_pki Chaoschain_x509 Http_server Issue List Printf Relation Result Universe Vtime
