lib/deployment/http_server.mli: Cert Chaoschain_crypto Chaoschain_x509
