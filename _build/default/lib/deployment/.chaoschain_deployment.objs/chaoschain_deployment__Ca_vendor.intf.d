lib/deployment/ca_vendor.mli: Cert Chaoschain_pki Chaoschain_x509 Universe
