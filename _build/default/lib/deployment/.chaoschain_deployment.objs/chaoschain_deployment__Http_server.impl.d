lib/deployment/http_server.ml: Cert Chaoschain_crypto Chaoschain_x509 List
