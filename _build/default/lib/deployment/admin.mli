(** Administrator behaviour: the configuration steps (and missteps) that turn
    a CA delivery into the chain a server actually sends.

    Every non-compliance class the paper measures corresponds to a concrete
    operator here; the population generator composes them so defects arise
    mechanically rather than being painted onto chains. *)

open Chaoschain_x509
open Chaoschain_pki
module Keys = Chaoschain_crypto.Keys

type op =
  | Merge_naive
      (** concatenate cert file + ca-bundle exactly as delivered — preserves
          a reversed bundle, producing the 1->2->0 structures of section 4.2 *)
  | Merge_corrected      (** reorder the bundle into issuance order first *)
  | Leaf_into_chain_file
      (** also paste the leaf at the top of the chain file (the Apache
          SSLCertificateChainFile confusion) — duplicate leaf *)
  | Duplicate_paste of int
      (** paste the intermediate block [n] extra times (the ns3.link-style
          chains with up to 29 certificates) *)
  | Keep_stale_leaves of int
      (** leave [n] expired previous leaf certificates in the file
          (webcanny.com, Figure 2b) *)
  | Append_foreign_chain of Cert.t list
      (** append certificates belonging to another site's chain
          (archives.gov.tw, Figure 2d) *)
  | Append_irrelevant_root of Cert.t
  | Drop_intermediate of int   (** omit the bundle certificate at index [n] *)
  | Serve_leaf_only            (** forget the bundle entirely *)
  | Include_root of Cert.t     (** append the root (compliant but chatty) *)
  | Swap of int * int          (** swap two positions of the final list *)

val describe : op -> string

type outcome = {
  chain : Cert.t list;       (** what the administrator's files amount to *)
  ops_applied : op list;
}

val assemble :
  Universe.t -> Ca_vendor.delivery -> leaf_signer:Issue.signer ->
  ops:op list -> (outcome, string) result
(** Start from the delivery's files (preferring the fullchain when present,
    else cert + bundle) and apply the operators left to right. Stale leaves
    are re-issued from the same CA with past validity windows, as renewals
    would have produced them. *)

val deploy_to :
  Http_server.software -> Universe.t -> Ca_vendor.delivery ->
  leaf_signer:Issue.signer -> ops:op list ->
  (Cert.t list, string) result
(** {!assemble}, then push through the server software's checks; returns the
    chain the server will serve. *)
