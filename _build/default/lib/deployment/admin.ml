open Chaoschain_x509
open Chaoschain_pki
module Keys = Chaoschain_crypto.Keys

type op =
  | Merge_naive
  | Merge_corrected
  | Leaf_into_chain_file
  | Duplicate_paste of int
  | Keep_stale_leaves of int
  | Append_foreign_chain of Cert.t list
  | Append_irrelevant_root of Cert.t
  | Drop_intermediate of int
  | Serve_leaf_only
  | Include_root of Cert.t
  | Swap of int * int

let describe = function
  | Merge_naive -> "merge cert + ca-bundle verbatim"
  | Merge_corrected -> "merge with bundle reordered into issuance order"
  | Leaf_into_chain_file -> "paste leaf into the chain file too"
  | Duplicate_paste n -> Printf.sprintf "paste the intermediate block %d extra times" n
  | Keep_stale_leaves n -> Printf.sprintf "keep %d stale leaf certificates" n
  | Append_foreign_chain certs ->
      Printf.sprintf "append %d certificates of a foreign chain" (List.length certs)
  | Append_irrelevant_root _ -> "append an unrelated root certificate"
  | Drop_intermediate n -> Printf.sprintf "omit intermediate #%d" n
  | Serve_leaf_only -> "serve only the leaf certificate"
  | Include_root _ -> "append the root certificate"
  | Swap (i, j) -> Printf.sprintf "swap positions %d and %d" i j

type outcome = { chain : Cert.t list; ops_applied : op list }

let ( let* ) = Result.bind

(* Issuance-order sort of a bundle: repeatedly pick the certificate issued by
   no other bundle member last (i.e. topological order, leaf-side first). *)
let reorder_bundle ~leaf bundle =
  let rec chain_from current remaining acc =
    match
      List.partition
        (fun c -> Relation.issued_by_name ~issuer:c ~child:current) remaining
    with
    | [], _ -> List.rev acc @ remaining
    | issuer :: _, _ ->
        let remaining = List.filter (fun c -> not (Cert.equal c issuer)) remaining in
        chain_from issuer remaining (issuer :: acc)
  in
  chain_from leaf bundle []

let stale_leaf universe delivery ~leaf_signer k =
  (* A previous-generation certificate for the same site: same CA, same key,
     validity window k periods in the past. *)
  let h = Universe.hierarchy universe delivery.Ca_vendor.vendor in
  let nb = Vtime.add_months (Cert.not_before leaf_signer.Issue.cert) (-12 * k) in
  let na = Vtime.add_months nb 12 in
  Issue.reissue (Universe.rng universe) ~parent:h.Universe.issuing ~existing:leaf_signer
    ~not_before:nb ~not_after:na

let assemble universe delivery ~leaf_signer ~ops =
  let* leaf_list = Ca_vendor.cert_only delivery in
  let* fullchain = Ca_vendor.fullchain_certs delivery in
  let* bundle = Ca_vendor.bundle_certs delivery in
  let leaf =
    match (leaf_list, fullchain) with
    | l :: _, _ -> l
    | [], l :: _ -> l
    | [], [] -> leaf_signer.Issue.cert
  in
  let initial_cert_part, initial_bundle =
    match fullchain with
    | _ :: rest -> ([ leaf ], rest)
    | [] -> ([ leaf ], bundle)
  in
  let apply (certs, chain_part) op =
    match op with
    | Merge_naive -> (certs, chain_part)
    | Merge_corrected -> (certs, reorder_bundle ~leaf chain_part)
    | Leaf_into_chain_file -> (certs, leaf :: chain_part)
    | Duplicate_paste n ->
        let block = List.filter (fun c -> not (Cert.equal c leaf)) chain_part in
        let rec extra k acc = if k = 0 then acc else extra (k - 1) (acc @ block) in
        (certs, extra n chain_part)
    | Keep_stale_leaves n ->
        let stale = List.init n (fun i -> stale_leaf universe delivery ~leaf_signer (i + 1)) in
        (certs @ stale, chain_part)
    | Append_foreign_chain foreign -> (certs, chain_part @ foreign)
    | Append_irrelevant_root root -> (certs, chain_part @ [ root ])
    | Drop_intermediate n -> (certs, List.filteri (fun i _ -> i <> n) chain_part)
    | Serve_leaf_only -> (certs, [])
    | Include_root root -> (certs, chain_part @ [ root ])
    | Swap _ -> (certs, chain_part)
  in
  let certs, chain_part =
    List.fold_left apply (initial_cert_part, initial_bundle) ops
  in
  let chain = certs @ chain_part in
  (* Position swaps act on the final list. *)
  let chain =
    List.fold_left
      (fun chain op ->
        match op with
        | Swap (i, j) when i < List.length chain && j < List.length chain ->
            let arr = Array.of_list chain in
            let tmp = arr.(i) in
            arr.(i) <- arr.(j);
            arr.(j) <- tmp;
            Array.to_list arr
        | _ -> chain)
      chain ops
  in
  Ok { chain; ops_applied = ops }

let deploy_to software universe delivery ~leaf_signer ~ops =
  let* { chain; _ } = assemble universe delivery ~leaf_signer ~ops in
  let key = Keys.public_of_private leaf_signer.Issue.key in
  let config =
    match Http_server.layout_of software with
    | Http_server.Separate_files ->
        { Http_server.cert_file = [ List.hd chain ];
          chain_file = List.tl chain;
          private_key_of = key }
    | Http_server.Fullchain_file | Http_server.Pfx_file ->
        { Http_server.cert_file = chain; chain_file = []; private_key_of = key }
  in
  match Http_server.deploy software config with
  | Http_server.Deployed served -> Ok served
  | Http_server.Config_error msg -> Error msg
