(** PEM armor (RFC 7468) for certificate files — the format CA delivery
    bundles and server configuration files use. *)

open Chaoschain_x509

val encode_cert : Cert.t -> string
(** One CERTIFICATE block, 64-column Base64 body. *)

val encode_certs : Cert.t list -> string
(** Concatenated blocks, as a fullchain/ca-bundle file. *)

val decode_certs : string -> (Cert.t list, string) result
(** Every CERTIFICATE block in the input, in order. Text outside blocks is
    ignored (PEM files routinely carry human-readable headers). Fails on a
    malformed block or non-DER body. *)
