(** CA / reseller delivery models (section 4.2, Table 6, Appendix C).

    When a certificate is issued, each vendor hands the administrator a
    characteristic set of files; those shapes — not random noise — are what
    the paper traces reversed sequences and incomplete chains back to
    (GoGetSSL, cyber_Folks and Trustico ship their ca-bundle in reverse
    order; TAIWAN-CA omits the "TWCA Global Root CA" intermediate; Let's
    Encrypt deploys automatically and compliantly). *)

open Chaoschain_x509
open Chaoschain_pki

type guide = No_guide | Generic_guide | Per_server_guide of string list

type delivery = {
  vendor : Universe.vendor;
  automated : bool;             (** automatic certificate management offered *)
  fullchain_file : string option;   (** PEM: leaf + intermediates, compliant *)
  cert_only_file : string option;   (** PEM: just the leaf *)
  ca_bundle_file : string option;   (** PEM: intermediates (+ root) *)
  bundle_order_compliant : bool;    (** ca-bundle in issuance order? *)
  includes_root : bool;             (** root present in the bundle *)
  install_guide : guide;
}

val issue : Universe.t -> Universe.vendor -> leaf:Cert.t -> delivery
(** Package a freshly-issued leaf the way this vendor would. *)

val table6_row : Universe.t -> Universe.vendor -> (string * string) list
(** The Table 6 characteristics of this vendor as label/value pairs. *)

val bundle_certs : delivery -> (Cert.t list, string) result
(** Parse the ca-bundle back out of its PEM file ([Ok \[\]] when absent). *)

val fullchain_certs : delivery -> (Cert.t list, string) result
val cert_only : delivery -> (Cert.t list, string) result
