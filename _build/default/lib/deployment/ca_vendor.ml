open Chaoschain_x509
open Chaoschain_pki

type guide = No_guide | Generic_guide | Per_server_guide of string list

type delivery = {
  vendor : Universe.vendor;
  automated : bool;
  fullchain_file : string option;
  cert_only_file : string option;
  ca_bundle_file : string option;
  bundle_order_compliant : bool;
  includes_root : bool;
  install_guide : guide;
}

(* Intermediates above the leaf in issuance order, excluding the root. *)
let intermediates_of (h : Universe.hierarchy) =
  let above = h.Universe.above in
  h.Universe.issuing.Issue.cert
  :: List.filter (fun c -> not (Cert.is_self_signed c)) above

let root_of (h : Universe.hierarchy) =
  List.find Cert.is_self_signed (List.rev h.Universe.above)

let issue universe vendor ~leaf =
  let h = Universe.hierarchy universe vendor in
  let intermediates = intermediates_of h in
  let root = root_of h in
  match vendor with
  | Universe.Lets_encrypt ->
      (* ACME: a compliant fullchain, no separate bundle, no root. *)
      { vendor;
        automated = true;
        fullchain_file = Some (Pem.encode_certs (leaf :: intermediates));
        cert_only_file = Some (Pem.encode_cert leaf);
        ca_bundle_file = None;
        bundle_order_compliant = true;
        includes_root = false;
        install_guide = Generic_guide }
  | Universe.Zerossl ->
      { vendor;
        automated = true;
        fullchain_file = None;
        cert_only_file = Some (Pem.encode_cert leaf);
        ca_bundle_file = Some (Pem.encode_certs intermediates);
        bundle_order_compliant = true;
        includes_root = false;
        install_guide = Per_server_guide [ "Apache"; "IIS" ] }
  | Universe.Gogetssl | Universe.Cyber_folks | Universe.Trustico ->
      (* The defining misbehaviour: bundle with root first, intermediates in
         reverse issuance order. *)
      let reversed = List.rev (intermediates @ [ root ]) in
      { vendor;
        automated = false;
        fullchain_file = None;
        cert_only_file = Some (Pem.encode_cert leaf);
        ca_bundle_file = Some (Pem.encode_certs reversed);
        bundle_order_compliant = false;
        includes_root = true;
        install_guide = No_guide }
  | Universe.Taiwan_ca ->
      (* Ships the issuing CA but habitually omits the cross intermediate
         ("TWCA Global Root CA"), the root cause of its incomplete chains. *)
      { vendor;
        automated = false;
        fullchain_file = None;
        cert_only_file = Some (Pem.encode_cert leaf);
        ca_bundle_file = Some (Pem.encode_cert h.Universe.issuing.Issue.cert);
        bundle_order_compliant = true;
        includes_root = false;
        install_guide = No_guide }
  | Universe.Digicert | Universe.Sectigo | Universe.Other_ca _ ->
      { vendor;
        automated = false;
        fullchain_file = None;
        cert_only_file = Some (Pem.encode_cert leaf);
        ca_bundle_file = Some (Pem.encode_certs intermediates);
        bundle_order_compliant = true;
        includes_root = false;
        install_guide = Generic_guide }

let yes_no b = if b then "yes" else "no"

let table6_row universe vendor =
  let rng = Universe.rng universe in
  ignore rng;
  let probe = Universe.mint_leaf universe vendor ~domain:"probe.example" () in
  let d = issue universe vendor ~leaf:probe.Issue.cert in
  [ ("Automatic Certificate Management", yes_no d.automated);
    ("Provide Fullchain File", yes_no (d.fullchain_file <> None));
    ("Provide Ca-bundle File", yes_no (d.ca_bundle_file <> None));
    ("Provide Root Certificate", yes_no d.includes_root);
    ("Compliant Issuance Order in Ca-bundle File", yes_no d.bundle_order_compliant);
    ("Provide Certificate Installation Guide",
     match d.install_guide with
     | No_guide -> "no"
     | Generic_guide -> "yes"
     | Per_server_guide servers -> "only " ^ String.concat "/" servers) ]

let parse_opt = function
  | None -> Ok []
  | Some pem -> Pem.decode_certs pem

let bundle_certs d = parse_opt d.ca_bundle_file
let fullchain_certs d = parse_opt d.fullchain_file
let cert_only d = parse_opt d.cert_only_file
