open Chaoschain_x509

let header = "-----BEGIN CERTIFICATE-----"
let footer = "-----END CERTIFICATE-----"

let wrap64 s =
  let buf = Buffer.create (String.length s + (String.length s / 64) + 2) in
  String.iteri
    (fun i c ->
      if i > 0 && i mod 64 = 0 then Buffer.add_char buf '\n';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let encode_cert cert =
  Printf.sprintf "%s\n%s\n%s\n" header (wrap64 (Base64.encode (Cert.to_der cert))) footer

let encode_certs certs = String.concat "" (List.map encode_cert certs)

let ( let* ) = Result.bind

let decode_certs text =
  let lines = String.split_on_char '\n' text in
  let rec scan acc current lines =
    match (lines, current) with
    | [], None -> Ok (List.rev acc)
    | [], Some _ -> Error "PEM: unterminated CERTIFICATE block"
    | line :: rest, current -> (
        let line = String.trim line in
        match current with
        | None -> if String.equal line header then scan acc (Some []) rest else scan acc None rest
        | Some body ->
            if String.equal line footer then begin
              let b64 = String.concat "" (List.rev body) in
              let* der = Base64.decode b64 in
              let* cert = Cert.of_der der in
              scan (cert :: acc) None rest
            end
            else if String.equal line "" then scan acc current rest
            else scan acc (Some (line :: body)) rest)
  in
  scan [] None lines
