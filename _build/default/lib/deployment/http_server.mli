(** HTTP-server certificate deployment models (section 4.2, Table 4,
    Appendix B).

    Each software model accepts the administrator's certificate files in the
    layout it really uses, runs the configuration-time checks the paper
    catalogued (all verify the private key matches the first certificate;
    Azure Application Gateway and IIS additionally reject duplicate leaf
    certificates; nobody checks duplicate intermediates), and either serves a
    chain or refuses with a configuration error. *)

open Chaoschain_x509
module Keys = Chaoschain_crypto.Keys

type software =
  | Apache_pre_2_4_8   (** SSLCertificateFile + SSLCertificateChainFile *)
  | Apache             (** >= 2.4.8: full chain in one file *)
  | Nginx
  | Azure_app_gateway
  | Iis
  | Aws_elb            (** CertificateFile + Ca-bundle, like old Apache *)
  | Cloudflare         (** fully managed: always deploys compliantly *)

val software_to_string : software -> string
val all : software list

type file_layout =
  | Separate_files  (** SF1: CertificateFile.pem + Ca-bundle.pem + Privkey *)
  | Fullchain_file  (** SF2: FullChain.pem + Privkey *)
  | Pfx_file        (** SF3: CertificateFile.pfx *)

val layout_of : software -> file_layout

type config = {
  cert_file : Cert.t list;
      (** SF1: the CertificateFile contents; SF2/SF3: the full chain *)
  chain_file : Cert.t list;   (** SF1 only: the Ca-bundle contents *)
  private_key_of : Keys.public_key;
      (** the public half of the configured private key *)
}

type check = Private_key_match | Duplicate_leaf_check | Duplicate_intermediate_check

val checks_performed : software -> check list

type result =
  | Deployed of Cert.t list    (** the chain the server will send *)
  | Config_error of string     (** deployment refused *)

val deploy : software -> config -> result

val table4_row : software -> (string * string) list
(** The Table 4 characteristics as label/value pairs. *)

val automatic_certificate_management : software -> bool
