let alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/"

let encode s =
  let n = String.length s in
  let out = Buffer.create ((n + 2) / 3 * 4) in
  let i = ref 0 in
  while !i + 2 < n do
    let b0 = Char.code s.[!i] and b1 = Char.code s.[!i + 1] and b2 = Char.code s.[!i + 2] in
    Buffer.add_char out alphabet.[b0 lsr 2];
    Buffer.add_char out alphabet.[((b0 land 0x3) lsl 4) lor (b1 lsr 4)];
    Buffer.add_char out alphabet.[((b1 land 0xF) lsl 2) lor (b2 lsr 6)];
    Buffer.add_char out alphabet.[b2 land 0x3F];
    i := !i + 3
  done;
  (match n - !i with
  | 1 ->
      let b0 = Char.code s.[!i] in
      Buffer.add_char out alphabet.[b0 lsr 2];
      Buffer.add_char out alphabet.[(b0 land 0x3) lsl 4];
      Buffer.add_string out "=="
  | 2 ->
      let b0 = Char.code s.[!i] and b1 = Char.code s.[!i + 1] in
      Buffer.add_char out alphabet.[b0 lsr 2];
      Buffer.add_char out alphabet.[((b0 land 0x3) lsl 4) lor (b1 lsr 4)];
      Buffer.add_char out alphabet.[(b1 land 0xF) lsl 2];
      Buffer.add_char out '='
  | _ -> ());
  Buffer.contents out

let value_of = function
  | 'A' .. 'Z' as c -> Some (Char.code c - Char.code 'A')
  | 'a' .. 'z' as c -> Some (Char.code c - Char.code 'a' + 26)
  | '0' .. '9' as c -> Some (Char.code c - Char.code '0' + 52)
  | '+' -> Some 62
  | '/' -> Some 63
  | _ -> None

let decode s =
  let n = String.length s in
  if n mod 4 <> 0 then Error "base64: length not a multiple of 4"
  else begin
    let padding =
      if n = 0 then 0
      else if s.[n - 2] = '=' then 2
      else if s.[n - 1] = '=' then 1
      else 0
    in
    let out = Buffer.create (n / 4 * 3) in
    let err = ref None in
    let quad = Array.make 4 0 in
    (try
       for group = 0 to (n / 4) - 1 do
         for k = 0 to 3 do
           let c = s.[(group * 4) + k] in
           let last_group = group = (n / 4) - 1 in
           if c = '=' && last_group && k >= 4 - padding then quad.(k) <- 0
           else
             match value_of c with
             | Some v -> quad.(k) <- v
             | None ->
                 err := Some (Printf.sprintf "base64: invalid character %C" c);
                 raise Exit
         done;
         Buffer.add_char out (Char.chr ((quad.(0) lsl 2) lor (quad.(1) lsr 4)));
         Buffer.add_char out (Char.chr (((quad.(1) land 0xF) lsl 4) lor (quad.(2) lsr 2)));
         Buffer.add_char out (Char.chr (((quad.(2) land 0x3) lsl 6) lor quad.(3)))
       done
     with Exit -> ());
    match !err with
    | Some e -> Error e
    | None ->
        let full = Buffer.contents out in
        Ok (String.sub full 0 (String.length full - padding))
  end
