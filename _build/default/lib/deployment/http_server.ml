open Chaoschain_x509
module Keys = Chaoschain_crypto.Keys

type software =
  | Apache_pre_2_4_8
  | Apache
  | Nginx
  | Azure_app_gateway
  | Iis
  | Aws_elb
  | Cloudflare

let software_to_string = function
  | Apache_pre_2_4_8 -> "Apache (<2.4.8)"
  | Apache -> "Apache"
  | Nginx -> "Nginx"
  | Azure_app_gateway -> "Microsoft-Azure-Application-Gateway"
  | Iis -> "IIS"
  | Aws_elb -> "AWS ELB"
  | Cloudflare -> "cloudflare"

let all = [ Apache_pre_2_4_8; Apache; Nginx; Azure_app_gateway; Iis; Aws_elb; Cloudflare ]

type file_layout = Separate_files | Fullchain_file | Pfx_file

let layout_of = function
  | Apache_pre_2_4_8 | Aws_elb -> Separate_files
  | Apache | Nginx | Cloudflare -> Fullchain_file
  | Azure_app_gateway | Iis -> Pfx_file

type config = {
  cert_file : Cert.t list;
  chain_file : Cert.t list;
  private_key_of : Keys.public_key;
}

type check = Private_key_match | Duplicate_leaf_check | Duplicate_intermediate_check

let checks_performed = function
  | Azure_app_gateway | Iis -> [ Private_key_match; Duplicate_leaf_check ]
  | Apache_pre_2_4_8 | Apache | Nginx | Aws_elb | Cloudflare -> [ Private_key_match ]

type result = Deployed of Cert.t list | Config_error of string

let served_chain software config =
  match layout_of software with
  | Separate_files -> config.cert_file @ config.chain_file
  | Fullchain_file | Pfx_file -> config.cert_file

(* Duplicate *leaf* detection as Azure performs it: more than one certificate
   whose public key matches the configured private key, or the exact first
   certificate appearing again. *)
let has_duplicate_leaf config chain =
  match chain with
  | [] -> false
  | first :: rest ->
      List.exists (Cert.equal first) rest
      || List.length
           (List.filter
              (fun c -> Keys.equal_public (Cert.public_key c) config.private_key_of)
              chain)
         > 1

let deploy software config =
  let chain = served_chain software config in
  match chain with
  | [] -> Config_error "no certificate configured"
  | first :: _ ->
      if not (Keys.equal_public (Cert.public_key first) config.private_key_of) then
        Config_error "SSL_CTX_use_PrivateKey failed: key values mismatch"
      else if
        List.mem Duplicate_leaf_check (checks_performed software)
        && has_duplicate_leaf config chain
      then Config_error "duplicate leaf certificate in chain"
      else if software = Cloudflare then
        (* Managed deployment: Cloudflare re-issues and serves a compliant
           chain regardless of what was uploaded (its Advanced Certificate
           Manager bypasses this path). *)
        Deployed chain
      else Deployed chain

let automatic_certificate_management = function
  | Apache_pre_2_4_8 | Apache | Nginx | Azure_app_gateway | Aws_elb | Cloudflare -> true
  | Iis -> false

let layout_label = function
  | Separate_files -> "SF1 (CertificateFile.pem, Ca-bundle.pem, Privkey)"
  | Fullchain_file -> "SF2 (FullChain.pem, Privkey)"
  | Pfx_file -> "SF3 (CertificateFile.pfx)"

let yes_no b = if b then "yes" else "no"

let table4_row software =
  let checks = checks_performed software in
  [ ("Automatic Certificate Management", yes_no (automatic_certificate_management software));
    ("Supported Certificate Fields", layout_label (layout_of software));
    ("Private Key and Leaf Certificate Matching Check",
     yes_no (List.mem Private_key_match checks));
    ("Duplicate Leaf Certificate Check", yes_no (List.mem Duplicate_leaf_check checks));
    ("Duplicate Intermediate/Root Certificate Check",
     yes_no (List.mem Duplicate_intermediate_check checks)) ]
