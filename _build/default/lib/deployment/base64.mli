(** RFC 4648 Base64, implemented from scratch for the PEM armor. *)

val encode : string -> string
(** Standard alphabet with [=] padding, no line breaks. *)

val decode : string -> (string, string) result
(** Rejects characters outside the alphabet (whitespace is not accepted here;
    {!Pem} strips line structure before calling). *)
