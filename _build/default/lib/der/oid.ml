type t = int list

let make arcs =
  (match arcs with
  | a :: b :: _ ->
      if a < 0 || a > 2 then invalid_arg "Oid.make: first arc must be 0..2";
      if a < 2 && b >= 40 then
        invalid_arg "Oid.make: second arc must be < 40 when first arc is 0 or 1";
      if List.exists (fun x -> x < 0) arcs then
        invalid_arg "Oid.make: negative arc"
  | _ -> invalid_arg "Oid.make: need at least two arcs");
  arcs

let arcs t = t
let equal = ( = )
let compare = Stdlib.compare
let hash = Hashtbl.hash
let to_string t = String.concat "." (List.map string_of_int t)

let of_string s =
  match String.split_on_char '.' s with
  | [] | [ _ ] -> Error "oid: need at least two arcs"
  | parts -> (
      try
        let arcs = List.map int_of_string parts in
        Ok (make arcs)
      with
      | Failure _ -> Error "oid: non-numeric arc"
      | Invalid_argument msg -> Error msg)

let at_common_name = make [ 2; 5; 4; 3 ]
let at_country = make [ 2; 5; 4; 6 ]
let at_locality = make [ 2; 5; 4; 7 ]
let at_state = make [ 2; 5; 4; 8 ]
let at_organization = make [ 2; 5; 4; 10 ]
let at_org_unit = make [ 2; 5; 4; 11 ]
let ext_subject_key_id = make [ 2; 5; 29; 14 ]
let ext_key_usage = make [ 2; 5; 29; 15 ]
let ext_subject_alt_name = make [ 2; 5; 29; 17 ]
let ext_basic_constraints = make [ 2; 5; 29; 19 ]
let ext_authority_key_id = make [ 2; 5; 29; 35 ]
let ext_ext_key_usage = make [ 2; 5; 29; 37 ]
let ext_authority_info_access = make [ 1; 3; 6; 1; 5; 5; 7; 1; 1 ]
let ad_ocsp = make [ 1; 3; 6; 1; 5; 5; 7; 48; 1 ]
let ad_ca_issuers = make [ 1; 3; 6; 1; 5; 5; 7; 48; 2 ]
let eku_server_auth = make [ 1; 3; 6; 1; 5; 5; 7; 3; 1 ]
let eku_client_auth = make [ 1; 3; 6; 1; 5; 5; 7; 3; 2 ]
let alg_rsa_encryption = make [ 1; 2; 840; 113549; 1; 1; 1 ]
let alg_ec_public_key = make [ 1; 2; 840; 10045; 2; 1 ]
let alg_sha256_rsa = make [ 1; 2; 840; 113549; 1; 1; 11 ]
let alg_sha1_rsa = make [ 1; 2; 840; 113549; 1; 1; 5 ]
let alg_ecdsa_sha256 = make [ 1; 2; 840; 10045; 4; 3; 2 ]
let alg_ecdsa_sha384 = make [ 1; 2; 840; 10045; 4; 3; 3 ]

let registry =
  [
    (at_common_name, "commonName");
    (at_country, "countryName");
    (at_locality, "localityName");
    (at_state, "stateOrProvinceName");
    (at_organization, "organizationName");
    (at_org_unit, "organizationalUnitName");
    (ext_subject_key_id, "subjectKeyIdentifier");
    (ext_key_usage, "keyUsage");
    (ext_subject_alt_name, "subjectAltName");
    (ext_basic_constraints, "basicConstraints");
    (ext_authority_key_id, "authorityKeyIdentifier");
    (ext_ext_key_usage, "extendedKeyUsage");
    (ext_authority_info_access, "authorityInfoAccess");
    (ad_ocsp, "ocsp");
    (ad_ca_issuers, "caIssuers");
    (eku_server_auth, "serverAuth");
    (eku_client_auth, "clientAuth");
    (alg_rsa_encryption, "rsaEncryption");
    (alg_ec_public_key, "id-ecPublicKey");
    (alg_sha256_rsa, "sha256WithRSAEncryption");
    (alg_sha1_rsa, "sha1WithRSAEncryption");
    (alg_ecdsa_sha256, "ecdsa-with-SHA256");
    (alg_ecdsa_sha384, "ecdsa-with-SHA384");
  ]

let name t =
  match List.assoc_opt t registry with Some n -> n | None -> to_string t

let pp ppf t = Format.pp_print_string ppf (name t)
