(** ASN.1 object identifiers and the registry of OIDs used by Web PKI
    certificates. *)

type t
(** An OID as its arc list. Construction enforces the X.690 invariants
    (at least two arcs, first arc in 0..2, second arc < 40 when the first is
    0 or 1). *)

val make : int list -> t
(** Raises [Invalid_argument] on an arc list violating OID invariants. *)

val arcs : t -> int list
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_string : t -> string
(** Dotted-decimal form, e.g. ["2.5.29.19"]. *)

val of_string : string -> (t, string) result
(** Parse dotted-decimal form. *)

val name : t -> string
(** Human-readable name if the OID is in the registry below, otherwise the
    dotted-decimal form. *)

val pp : Format.formatter -> t -> unit

(** {1 Registry} *)

(* Attribute types (RDN components). *)
val at_common_name : t
val at_country : t
val at_locality : t
val at_state : t
val at_organization : t
val at_org_unit : t

(* Certificate extensions. *)
val ext_subject_key_id : t
val ext_key_usage : t
val ext_subject_alt_name : t
val ext_basic_constraints : t
val ext_authority_key_id : t
val ext_ext_key_usage : t
val ext_authority_info_access : t

(* Access method OIDs inside AIA. *)
val ad_ca_issuers : t
val ad_ocsp : t

(* Extended key usage purposes. *)
val eku_server_auth : t
val eku_client_auth : t

(* Signature / key algorithms. *)
val alg_rsa_encryption : t
val alg_ec_public_key : t
val alg_sha256_rsa : t
val alg_sha1_rsa : t
val alg_ecdsa_sha256 : t
val alg_ecdsa_sha384 : t
