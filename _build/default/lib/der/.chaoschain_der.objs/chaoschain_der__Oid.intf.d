lib/der/oid.mli: Format
