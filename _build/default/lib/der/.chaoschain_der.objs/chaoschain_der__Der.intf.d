lib/der/der.mli: Format Oid
