lib/der/der.ml: Buffer Chaoschain_crypto Char Format List Oid Printf Result String
