lib/der/oid.ml: Format Hashtbl List Stdlib String
