(** A DER (X.690 Distinguished Encoding Rules) subset sufficient for X.509.

    Values are represented as a generic TLV tree; typed constructors and
    destructors cover the universal types certificates need. Encoding always
    uses definite lengths with minimal length octets; decoding rejects
    indefinite lengths, non-minimal long-form lengths, and truncated input,
    mirroring the strictness real verifiers apply to certificate bytes. *)

type tag_class = Universal | Application | Context_specific | Private

type tag = { cls : tag_class; constructed : bool; number : int }
(** A decoded identifier octet (low-tag-number form only; tag numbers
    above 30 are not used by X.509 and are rejected). *)

type t =
  | Prim of tag * string  (** primitive TLV: tag + raw content octets *)
  | Cons of tag * t list  (** constructed TLV: tag + child values *)

(** {1 Constructors for universal types} *)

val boolean : bool -> t
val integer_of_int : int -> t

val integer_bytes : string -> t
(** Big-endian two's-complement content octets, given verbatim (used for
    large serial numbers). Raises [Invalid_argument] on empty input. *)

val bit_string : ?unused:int -> string -> t
val octet_string : string -> t
val null : t
val oid : Oid.t -> t
val utf8_string : string -> t
val printable_string : string -> t
val ia5_string : string -> t

val utc_time : string -> t
(** Content given pre-rendered, e.g. ["240314000000Z"]. *)

val generalized_time : string -> t
val sequence : t list -> t
val set : t list -> t

val context : int -> t list -> t
(** Constructed context-specific tag [n] (EXPLICIT tagging). *)

val context_prim : int -> string -> t
(** Primitive context-specific tag [n] (IMPLICIT tagging of a primitive). *)

(** {1 Destructors}

    Each returns [Error] with a descriptive message when the value has the
    wrong shape. *)

type 'a or_error = ('a, string) result

val as_boolean : t -> bool or_error
val as_integer_int : t -> int or_error
val as_integer_bytes : t -> string or_error
val as_bit_string : t -> (int * string) or_error
val as_octet_string : t -> string or_error
val as_oid : t -> Oid.t or_error
val as_string : t -> string or_error
(** Accepts UTF8String, PrintableString or IA5String. *)

val as_time : t -> string or_error
(** Accepts UTCTime or GeneralizedTime; returns the raw content. *)

val as_sequence : t -> t list or_error
val as_set : t -> t list or_error

val as_context : int -> t -> t list or_error
(** Children of a constructed context-specific tag [n]. *)

val as_context_prim : int -> t -> string or_error

val tag_of : t -> tag

val is_context : int -> t -> bool
(** Whether the value carries context-specific tag [n] (either form). *)

(** {1 Wire codec} *)

val encode : t -> string
(** DER-encode a value. *)

val encode_many : t list -> string
(** Concatenation of the encodings of several values. *)

val decode : string -> t or_error
(** Decode exactly one value occupying the whole input. *)

val decode_prefix : string -> int -> (t * int) or_error
(** [decode_prefix s off] decodes one value starting at [off]; returns it and
    the offset one past its last byte. *)

val pp : Format.formatter -> t -> unit
(** Debugging pretty-printer (openssl asn1parse flavoured). *)
