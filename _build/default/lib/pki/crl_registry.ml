open Chaoschain_x509

type t = { mutable crls : (Dn.t * Crl.t) list }

let create () = { crls = [] }

let register t crl =
  let dn = Crl.issuer_dn crl in
  t.crls <- (dn, crl) :: List.filter (fun (d, _) -> not (Dn.equal d dn)) t.crls

let lookup t dn =
  List.find_map (fun (d, crl) -> if Dn.equal d dn then Some crl else None) t.crls

let lookup_for t ~issuer = lookup t (Cert.subject issuer)

let revoke rng t ~issuer ~now ?(reason = Crl.Unspecified) cert =
  let existing =
    match lookup t (Cert.subject issuer.Issue.cert) with
    | Some crl -> Crl.entries crl
    | None -> []
  in
  let entry = { Crl.serial = Cert.serial cert; revoked_at = now; reason } in
  register t (Crl.issue rng ~issuer ~this_update:now (entry :: existing))

let status t ~issuer ~now cert =
  Crl.check ~crl:(lookup_for t ~issuer) ~issuer ~now cert
