open Chaoschain_x509

type program = Mozilla | Chrome | Microsoft | Apple

let program_to_string = function
  | Mozilla -> "Mozilla"
  | Chrome -> "Chrome"
  | Microsoft -> "Microsoft"
  | Apple -> "Apple"

let all_programs = [ Mozilla; Chrome; Microsoft; Apple ]

module Smap = Map.Make (String)

type t = {
  name : string;
  by_fp : Cert.t Smap.t;
  by_skid : Cert.t list Smap.t;
  roots : Cert.t list; (* insertion order *)
}

let empty name = { name; by_fp = Smap.empty; by_skid = Smap.empty; roots = [] }

let add t cert =
  let fp = Cert.fingerprint cert in
  if Smap.mem fp t.by_fp then t
  else
    let by_skid =
      match Cert.subject_key_id cert with
      | None -> t.by_skid
      | Some skid ->
          Smap.update skid
            (fun prev -> Some (cert :: Option.value prev ~default:[]))
            t.by_skid
    in
    { t with by_fp = Smap.add fp cert t.by_fp; by_skid; roots = cert :: t.roots }

let make name certs = List.fold_left add (empty name) certs
let name t = t.name
let size t = Smap.cardinal t.by_fp
let certs t = List.rev t.roots
let mem t cert = Smap.mem (Cert.fingerprint cert) t.by_fp
let mem_skid t skid = Smap.mem skid t.by_skid
let find_by_skid t skid = Option.value (Smap.find_opt skid t.by_skid) ~default:[]

let find_by_subject t dn =
  List.filter (fun root -> Dn.equal (Cert.subject root) dn) (certs t)

let issuer_candidates t cert = find_by_subject t (Cert.issuer cert)

let union name stores =
  List.fold_left (fun acc s -> List.fold_left add acc (certs s)) (empty name) stores
