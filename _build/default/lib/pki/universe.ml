open Chaoschain_x509
module Prng = Chaoschain_crypto.Prng

type vendor =
  | Lets_encrypt
  | Digicert
  | Sectigo
  | Zerossl
  | Gogetssl
  | Taiwan_ca
  | Cyber_folks
  | Trustico
  | Other_ca of int

let vendor_to_string = function
  | Lets_encrypt -> "Let's Encrypt"
  | Digicert -> "DigiCert"
  | Sectigo -> "Sectigo Limited"
  | Zerossl -> "ZeroSSL"
  | Gogetssl -> "GoGetSSL"
  | Taiwan_ca -> "TAIWAN-CA"
  | Cyber_folks -> "cyber_Folks S.A."
  | Trustico -> "Trustico"
  | Other_ca i -> Printf.sprintf "Other CA %d" i

let named_vendors =
  [ Lets_encrypt; Digicert; Sectigo; Zerossl; Gogetssl; Taiwan_ca; Cyber_folks; Trustico ]

let other_ca_count = 8

type hierarchy = {
  issuing : Issue.signer;
  above : Cert.t list;
  issuing_aia_uri : string;
}

type restricted = {
  r_hierarchy : hierarchy;
  r_root : Cert.t;
  r_missing_from : Root_store.program list;
  r_intermediate_has_aia : bool;
}

type t = {
  rng : Prng.t;
  aia : Aia_repo.t;
  now : Vtime.t;
  mutable stores : (Root_store.program * Root_store.t) list;
  mutable union : Root_store.t;
  hierarchies : (vendor, hierarchy) Hashtbl.t;
  no_akid_hierarchies : (vendor, hierarchy) Hashtbl.t;
  deep_hierarchies : (vendor * int, hierarchy) Hashtbl.t;
  root_signers : (vendor, Issue.signer) Hashtbl.t;
  crosses : (vendor, Cert.t * Cert.t) Hashtbl.t;
  (* vendor -> (self-signed parent of the issuing CA, cross-signed variant of
     the same subject/key under a legacy root). *)
  mutable legacy_roots : Cert.t list;
  (* Named special constructs. *)
  mutable sectigo_usertrust_self_ : Cert.t option;
  mutable sectigo_usertrust_cross_ : Cert.t option;
  mutable sectigo_legacy_root_ : Cert.t option;
  mutable sectigo_usertrust_cross_expired_ : Cert.t option;
  mutable digicert_ca1_recent_ : Cert.t option;
  mutable digicert_ca1_old_ : Cert.t option;
  mutable digicert_signer_ : Issue.signer option;
  mutable taiwan_root_ : Cert.t option;
  mutable taiwan_global_ : Issue.signer option;
  mutable epki_ : hierarchy option;
  mutable gov_hidden_root_ : Issue.signer option;
  mutable gov_grca_ : hierarchy option;
  mutable gov_moex_intermediate_ : Issue.signer option;
  mutable gov_moex_cross_by_hidden_ : Cert.t option;
  mutable cacert_class3_ : Cert.t option;
  mutable cacert_leaf_signer_ : Issue.signer option;
  mutable restricted_ : (string * restricted) list;
}

let aia t = t.aia
let rng t = t.rng
let now t = t.now
let union_store t = t.union
let store t program = List.assoc program t.stores

let get name = function
  | Some v -> v
  | None -> invalid_arg ("Universe: " ^ name ^ " not initialised")

let aia_uri ~host ~file = Printf.sprintf "http://%s/%s.crt" host file

(* Long-lived CA validity windows relative to the simulated "now". *)
let ca_validity ~now ~age_years ~life_years =
  (Vtime.add_years now (-age_years), Vtime.add_years now (life_years - age_years))

let root_spec ~now ~cn ~o ?(age = 10) ?(life = 25) () =
  Issue.spec ~is_ca:true
    ~not_before:(fst (ca_validity ~now ~age_years:age ~life_years:life))
    ~not_after:(snd (ca_validity ~now ~age_years:age ~life_years:life))
    (Dn.make ~c:"US" ~o ~cn ())

let intermediate_spec ~now ~cn ~o ?(age = 4) ?(life = 12) ?path_len ?aia ?(faults = []) () =
  Issue.spec ~is_ca:true ?path_len
    ~not_before:(fst (ca_validity ~now ~age_years:age ~life_years:life))
    ~not_after:(snd (ca_validity ~now ~age_years:age ~life_years:life))
    ~aia_ca_issuers:(match aia with None -> [] | Some uri -> [ uri ])
    ~faults
    (Dn.make ~c:"US" ~o ~cn ())

(* Build a standard two-level hierarchy (root -> issuing intermediate),
   publish both certificates in the AIA repository, and return it. *)
let build_hierarchy t ~host ~root_cn ~root_o ~inter_cn ~inter_o ?(inter_faults = []) () =
  let root_uri = aia_uri ~host ~file:"root" in
  let inter_uri = aia_uri ~host ~file:"issuing" in
  let root = Issue.self_signed t.rng (root_spec ~now:t.now ~cn:root_cn ~o:root_o ()) in
  let issuing =
    Issue.issue t.rng ~parent:root
      (intermediate_spec ~now:t.now ~cn:inter_cn ~o:inter_o ~path_len:0 ~aia:root_uri
         ~faults:inter_faults ())
  in
  Aia_repo.publish t.aia ~uri:root_uri root.Issue.cert;
  Aia_repo.publish t.aia ~uri:inter_uri issuing.Issue.cert;
  (root, { issuing; above = [ root.Issue.cert ]; issuing_aia_uri = inter_uri })

let setup_lets_encrypt t =
  let root, h =
    build_hierarchy t ~host:"x1.i.lencr.sim" ~root_cn:"ISRG Root X1"
      ~root_o:"Internet Security Research Group" ~inter_cn:"R3"
      ~inter_o:"Let's Encrypt" ()
  in
  Hashtbl.replace t.hierarchies Lets_encrypt h;
  (* Parallel no-AKID issuing CA under the same root (Table 8 mechanism). *)
  let issuing_uri = aia_uri ~host:"x1.i.lencr.sim" ~file:"r4-legacy" in
  let issuing =
    Issue.issue t.rng ~parent:root
      (intermediate_spec ~now:t.now ~cn:"R4" ~o:"Let's Encrypt" ~path_len:0
         ~aia:(aia_uri ~host:"x1.i.lencr.sim" ~file:"root")
         ~faults:[ Issue.No_akid ] ())
  in
  Aia_repo.publish t.aia ~uri:issuing_uri issuing.Issue.cert;
  Hashtbl.replace t.no_akid_hierarchies Lets_encrypt
    { issuing; above = [ root.Issue.cert ]; issuing_aia_uri = issuing_uri };
  root

let setup_digicert t =
  let host = "cacerts.digicert.sim" in
  let root_uri = aia_uri ~host ~file:"DigiCertGlobalRootCA" in
  let root =
    Issue.self_signed t.rng
      (root_spec ~now:t.now ~cn:"DigiCert Global Root CA" ~o:"DigiCert Inc" ())
  in
  Aia_repo.publish t.aia ~uri:root_uri root.Issue.cert;
  (* The Figure 5 pair: same subject, same key, two validity windows. *)
  let old_nb = Vtime.make ~y:2020 ~m:9 ~d:24 () in
  let old_na = Vtime.make ~y:2030 ~m:9 ~d:23 ~hh:23 ~mm:59 ~ss:59 () in
  let recent_nb = Vtime.make ~y:2021 ~m:4 ~d:14 () in
  let recent_na = Vtime.make ~y:2031 ~m:4 ~d:13 ~hh:23 ~mm:59 ~ss:59 () in
  let ca1_uri = aia_uri ~host ~file:"DigiCertTLSRSASHA2562020CA1" in
  let ca1_old_signer =
    Issue.issue t.rng ~parent:root
      (intermediate_spec ~now:t.now ~cn:"DigiCert TLS RSA SHA256 2020 CA1"
         ~o:"DigiCert Inc" ~path_len:0 ~aia:root_uri ())
  in
  let ca1_old_signer =
    { ca1_old_signer with
      Issue.cert =
        Issue.reissue t.rng ~parent:root ~existing:ca1_old_signer ~not_before:old_nb
          ~not_after:old_na }
  in
  let ca1_recent =
    Issue.reissue t.rng ~parent:root ~existing:ca1_old_signer ~not_before:recent_nb
      ~not_after:recent_na
  in
  let signer = { ca1_old_signer with Issue.cert = ca1_recent } in
  Aia_repo.publish t.aia ~uri:ca1_uri ca1_recent;
  t.digicert_ca1_recent_ <- Some ca1_recent;
  t.digicert_ca1_old_ <- Some ca1_old_signer.Issue.cert;
  t.digicert_signer_ <- Some signer;
  Hashtbl.replace t.hierarchies Digicert
    { issuing = signer; above = [ root.Issue.cert ]; issuing_aia_uri = ca1_uri };
  (* no-AKID variant. *)
  let legacy_uri = aia_uri ~host ~file:"DigiCertLegacyCA" in
  let legacy =
    Issue.issue t.rng ~parent:root
      (intermediate_spec ~now:t.now ~cn:"DigiCert Legacy TLS CA" ~o:"DigiCert Inc"
         ~path_len:0 ~aia:root_uri ~faults:[ Issue.No_akid ] ())
  in
  Aia_repo.publish t.aia ~uri:legacy_uri legacy.Issue.cert;
  Hashtbl.replace t.no_akid_hierarchies Digicert
    { issuing = legacy; above = [ root.Issue.cert ]; issuing_aia_uri = legacy_uri };
  root

(* Sectigo: the USERTrust cross-sign structure of Figure 2c. Two roots:
   the modern self-signed USERTrust root and the legacy "AAA Certificate
   Services" root that cross-signs the USERTrust key. *)
let setup_sectigo t =
  let host = "crt.sectigo.sim" in
  let usertrust_uri = aia_uri ~host ~file:"USERTrustRSACertificationAuthority" in
  let aaa_uri = aia_uri ~host ~file:"AAACertificateServices" in
  let usertrust =
    Issue.self_signed t.rng
      (root_spec ~now:t.now ~cn:"USERTrust RSA Certification Authority"
         ~o:"The USERTRUST Network" ())
  in
  let aaa =
    Issue.self_signed t.rng
      (root_spec ~now:t.now ~cn:"AAA Certificate Services" ~o:"Comodo CA Limited"
         ~age:20 ~life:30 ())
  in
  let cross =
    Issue.cross_sign t.rng ~parent:aaa ~existing:usertrust
      ~not_before:(Vtime.add_years t.now (-6))
      ~not_after:(Vtime.add_years t.now 4) ()
  in
  let cross_expired =
    Issue.cross_sign t.rng ~parent:aaa ~existing:usertrust
      ~not_before:(Vtime.add_years t.now (-12))
      ~not_after:(Vtime.add_years t.now (-2)) ()
  in
  let dv_uri = aia_uri ~host ~file:"SectigoRSADomainValidationSecureServerCA" in
  let dv =
    Issue.issue t.rng ~parent:usertrust
      (intermediate_spec ~now:t.now
         ~cn:"Sectigo RSA Domain Validation Secure Server CA" ~o:"Sectigo Limited"
         ~path_len:0 ~aia:usertrust_uri ())
  in
  Aia_repo.publish t.aia ~uri:usertrust_uri usertrust.Issue.cert;
  Aia_repo.publish t.aia ~uri:aaa_uri aaa.Issue.cert;
  Aia_repo.publish t.aia ~uri:dv_uri dv.Issue.cert;
  t.sectigo_usertrust_self_ <- Some usertrust.Issue.cert;
  t.sectigo_usertrust_cross_ <- Some cross;
  t.sectigo_legacy_root_ <- Some aaa.Issue.cert;
  t.sectigo_usertrust_cross_expired_ <- Some cross_expired;
  Hashtbl.replace t.hierarchies Sectigo
    { issuing = dv; above = [ usertrust.Issue.cert ]; issuing_aia_uri = dv_uri };
  let nolegacy_uri = aia_uri ~host ~file:"SectigoLegacyDV" in
  let legacy_dv =
    Issue.issue t.rng ~parent:usertrust
      (intermediate_spec ~now:t.now ~cn:"Sectigo RSA DV Legacy CA" ~o:"Sectigo Limited"
         ~path_len:0 ~aia:usertrust_uri ~faults:[ Issue.No_akid ] ())
  in
  Aia_repo.publish t.aia ~uri:nolegacy_uri legacy_dv.Issue.cert;
  Hashtbl.replace t.no_akid_hierarchies Sectigo
    { issuing = legacy_dv; above = [ usertrust.Issue.cert ]; issuing_aia_uri = nolegacy_uri };
  (* ZeroSSL, GoGetSSL and Trustico chain under the USERTrust root, matching
     their real reseller structure. *)
  let sub ~cn ~o ~file vendor =
    let uri = aia_uri ~host ~file in
    let signer =
      Issue.issue t.rng ~parent:usertrust
        (intermediate_spec ~now:t.now ~cn ~o ~path_len:0 ~aia:usertrust_uri ())
    in
    Aia_repo.publish t.aia ~uri signer.Issue.cert;
    Hashtbl.replace t.hierarchies vendor
      { issuing = signer; above = [ usertrust.Issue.cert ]; issuing_aia_uri = uri }
  in
  sub ~cn:"ZeroSSL RSA Domain Secure Site CA" ~o:"ZeroSSL" ~file:"ZeroSSLRSADomainSecureSiteCA"
    Zerossl;
  sub ~cn:"GoGetSSL RSA DV CA" ~o:"GoGetSSL" ~file:"GoGetSSLRSADVCA" Gogetssl;
  sub ~cn:"Trustico RSA DV CA" ~o:"Trustico Group" ~file:"TrusticoRSADVCA" Trustico;
  (usertrust, aaa)

let setup_taiwan t =
  let host = "sslserver.twca.sim" in
  let root_uri = aia_uri ~host ~file:"TWCARootCertificationAuthority" in
  let root =
    Issue.self_signed t.rng
      (root_spec ~now:t.now ~cn:"TWCA Root Certification Authority" ~o:"TAIWAN-CA" ())
  in
  (* The intermediate TAIWAN-CA deployments habitually omit (appendix C).
     The AIA chain stays intact, so the omission is AIA-recoverable. *)
  let global_uri = aia_uri ~host ~file:"TWCAGlobalRootCA" in
  let global =
    Issue.issue t.rng ~parent:root
      (intermediate_spec ~now:t.now ~cn:"TWCA Global Root CA" ~o:"TAIWAN-CA"
         ~path_len:1 ~aia:root_uri ())
  in
  let secure_uri = aia_uri ~host ~file:"TWCASecureSSLCA" in
  let secure =
    Issue.issue t.rng ~parent:global
      (intermediate_spec ~now:t.now ~cn:"TWCA Secure SSL Certification Authority"
         ~o:"TAIWAN-CA" ~path_len:0 ~aia:global_uri ())
  in
  Aia_repo.publish t.aia ~uri:root_uri root.Issue.cert;
  Aia_repo.publish t.aia ~uri:global_uri global.Issue.cert;
  Aia_repo.publish t.aia ~uri:secure_uri secure.Issue.cert;
  t.taiwan_root_ <- Some root.Issue.cert;
  t.taiwan_global_ <- Some global;
  Hashtbl.replace t.hierarchies Taiwan_ca
    { issuing = secure;
      above = [ global.Issue.cert; root.Issue.cert ];
      issuing_aia_uri = secure_uri };
  root

let setup_cyber_folks t =
  let root, h =
    build_hierarchy t ~host:"certs.cyberfolks.sim" ~root_cn:"Certum Trusted Network CA"
      ~root_o:"Unizeto Technologies S.A." ~inter_cn:"cyber_Folks DV CA"
      ~inter_o:"cyber_Folks S.A." ()
  in
  Hashtbl.replace t.hierarchies Cyber_folks h;
  root

let setup_epki t =
  let root, h =
    build_hierarchy t ~host:"eca.hinet.sim" ~root_cn:"ePKI Root Certification Authority"
      ~root_o:"Chunghwa Telecom Co., Ltd." ~inter_cn:"Public Certification Authority - G2"
      ~inter_o:"Chunghwa Telecom Co., Ltd." ()
  in
  t.epki_ <- Some h;
  root

(* The Figure 4 structure: an intermediate whose key is certified both by a
   hidden (untrusted) government root and, through a cross-sign, by a trusted
   hierarchy. *)
let setup_gov t =
  let host = "gca.nat.sim" in
  let hidden =
    Issue.self_signed t.rng
      (root_spec ~now:t.now ~cn:"Government Internal Root CA" ~o:"Executive Yuan" ())
  in
  let grca_uri = aia_uri ~host ~file:"GRCA" in
  let grca =
    Issue.self_signed t.rng
      (root_spec ~now:t.now ~cn:"Government Root Certification Authority" ~o:"Taiwan" ())
  in
  Aia_repo.publish t.aia ~uri:grca_uri grca.Issue.cert;
  let moex_uri = aia_uri ~host ~file:"MOEXCA" in
  let moex =
    Issue.issue t.rng ~parent:grca
      (intermediate_spec ~now:t.now ~cn:"MOEX Certification Authority" ~o:"Taiwan"
         ~path_len:0 ~aia:grca_uri ())
  in
  let moex_cross_by_hidden =
    Issue.cross_sign t.rng ~parent:hidden ~existing:moex ()
  in
  Aia_repo.publish t.aia ~uri:moex_uri moex.Issue.cert;
  t.gov_hidden_root_ <- Some hidden;
  t.gov_grca_ <-
    Some { issuing = moex; above = [ grca.Issue.cert ]; issuing_aia_uri = moex_uri };
  t.gov_moex_intermediate_ <- Some moex;
  t.gov_moex_cross_by_hidden_ <- Some moex_cross_by_hidden;
  grca

let setup_cacert t =
  let host = "www.cacert.sim" in
  let root =
    Issue.self_signed t.rng
      (root_spec ~now:t.now ~cn:"CA Cert Signing Authority" ~o:"Root CA" ())
  in
  let class3_uri = aia_uri ~host ~file:"class3" in
  let class3 =
    Issue.issue t.rng ~parent:root
      (intermediate_spec ~now:t.now ~cn:"CAcert Class 3 Root" ~o:"CAcert Inc."
         ~path_len:0 ~aia:class3_uri ())
  in
  (* The defining misconfiguration: the class3 AIA URI serves class3 itself,
     not its issuer. *)
  Aia_repo.publish t.aia ~uri:class3_uri class3.Issue.cert;
  t.cacert_class3_ <- Some class3.Issue.cert;
  t.cacert_leaf_signer_ <- Some class3;
  root

let setup_other_cas t =
  List.init other_ca_count (fun i ->
      let o = Printf.sprintf "TrustWeb %d" i in
      let root, h =
        build_hierarchy t
          ~host:(Printf.sprintf "aia.trustweb%d.sim" i)
          ~root_cn:(Printf.sprintf "TrustWeb Global Root %d" i)
          ~root_o:o
          ~inter_cn:(Printf.sprintf "TrustWeb DV CA %d" i)
          ~inter_o:o ()
      in
      Hashtbl.replace t.hierarchies (Other_ca i) h;
      (* Every generic CA also has a no-AKID sibling intermediate. *)
      let uri = aia_uri ~host:(Printf.sprintf "aia.trustweb%d.sim" i) ~file:"legacy" in
      let legacy =
        Issue.issue t.rng ~parent:root
          (intermediate_spec ~now:t.now ~cn:(Printf.sprintf "TrustWeb Legacy CA %d" i)
             ~o ~path_len:0
             ~aia:(aia_uri ~host:(Printf.sprintf "aia.trustweb%d.sim" i) ~file:"root")
             ~faults:[ Issue.No_akid ] ())
      in
      Aia_repo.publish t.aia ~uri legacy.Issue.cert;
      Hashtbl.replace t.no_akid_hierarchies (Other_ca i)
        { issuing = legacy; above = [ root.Issue.cert ]; issuing_aia_uri = uri };
      root)

let setup_restricted t =
  let build name ~missing ~with_aia =
    let host = Printf.sprintf "aia.%s.sim" name in
    let root_uri = aia_uri ~host ~file:"root" in
    let root =
      Issue.self_signed t.rng
        (root_spec ~now:t.now ~cn:(Printf.sprintf "Regional Root CA %s" name)
           ~o:"Regional Trust" ~age:15 ~life:30 ())
    in
    let inter_uri = aia_uri ~host ~file:"issuing" in
    let inter =
      Issue.issue t.rng ~parent:root
        (intermediate_spec ~now:t.now ~cn:(Printf.sprintf "Regional DV CA %s" name)
           ~o:"Regional Trust" ~path_len:0
           ?aia:(if with_aia then Some root_uri else None)
           ())
    in
    if with_aia then Aia_repo.publish t.aia ~uri:root_uri root.Issue.cert;
    Aia_repo.publish t.aia ~uri:inter_uri inter.Issue.cert;
    let r =
      { r_hierarchy =
          { issuing = inter; above = [ root.Issue.cert ]; issuing_aia_uri = inter_uri };
        r_root = root.Issue.cert;
        r_missing_from = missing;
        r_intermediate_has_aia = with_aia }
    in
    t.restricted_ <- (name, r) :: t.restricted_;
    (root.Issue.cert, missing)
  in
  [ build "mc-recoverable" ~missing:[ Root_store.Mozilla; Root_store.Chrome ] ~with_aia:true;
    build "mc-dead-end" ~missing:[ Root_store.Mozilla; Root_store.Chrome ] ~with_aia:false;
    build "ms-recoverable" ~missing:[ Root_store.Microsoft ] ~with_aia:true;
    build "ms-dead-end" ~missing:[ Root_store.Microsoft ] ~with_aia:false;
    build "apple-recoverable" ~missing:[ Root_store.Apple ] ~with_aia:true;
    build "apple-dead-end" ~missing:[ Root_store.Apple ] ~with_aia:false ]

let broken_aia_uri_404 _t = "http://aia.broken.sim/missing.crt"
let broken_aia_uri_timeout _t = "http://aia.dead.sim/hang.crt"

let create ?(seed = 833L) () =
  let rng = Prng.create seed in
  let t =
    { rng;
      aia = Aia_repo.create ();
      now = Vtime.make ~y:2024 ~m:3 ~d:15 ~hh:12 ();
      stores = [];
      union = Root_store.make "union" [];
      hierarchies = Hashtbl.create 16;
      no_akid_hierarchies = Hashtbl.create 16;
      deep_hierarchies = Hashtbl.create 16;
      root_signers = Hashtbl.create 16;
      crosses = Hashtbl.create 16;
      legacy_roots = [];
      sectigo_usertrust_self_ = None;
      sectigo_usertrust_cross_ = None;
      sectigo_legacy_root_ = None;
      sectigo_usertrust_cross_expired_ = None;
      digicert_ca1_recent_ = None;
      digicert_ca1_old_ = None;
      digicert_signer_ = None;
      taiwan_root_ = None;
      taiwan_global_ = None;
      epki_ = None;
      gov_hidden_root_ = None;
      gov_grca_ = None;
      gov_moex_intermediate_ = None;
      gov_moex_cross_by_hidden_ = None;
      cacert_class3_ = None;
      cacert_leaf_signer_ = None;
      restricted_ = [] }
  in
  let le_root = setup_lets_encrypt t in
  let dc_root = setup_digicert t in
  let usertrust, aaa = setup_sectigo t in
  let tw_root = setup_taiwan t in
  let cf_root = setup_cyber_folks t in
  let epki_root = setup_epki t in
  let grca = setup_gov t in
  let _cacert_root = setup_cacert t in
  let other_roots = setup_other_cas t in
  let restricted = setup_restricted t in
  (* Cross-sign pairs behind the multiple-path scenarios: each vendor's
     issuing-CA parent exists both self-signed and cross-signed by a legacy
     root that is also in the stores. *)
  let add_cross vendor root legacy_cn =
    let legacy =
      Issue.self_signed t.rng
        (root_spec ~now:t.now ~cn:legacy_cn ~o:"Legacy Trust Services" ~age:20 ~life:28 ())
    in
    let cross =
      Issue.cross_sign t.rng ~parent:legacy ~existing:root
        ~not_before:(Vtime.add_years t.now (-5))
        ~not_after:(Vtime.add_years t.now 5) ()
    in
    t.legacy_roots <- legacy.Issue.cert :: t.legacy_roots;
    Hashtbl.replace t.crosses vendor (root.Issue.cert, cross)
  in
  add_cross Lets_encrypt le_root "DST Legacy Root X3";
  add_cross Digicert dc_root "Baltimore CyberTrust Legacy Root";
  add_cross (Other_ca 0) (List.hd other_roots) "TrustWeb Heritage Root";
  List.iter
    (fun v ->
      Hashtbl.replace t.crosses v
        (usertrust.Issue.cert,
         match t.sectigo_usertrust_cross_ with Some c -> c | None -> assert false))
    [ Sectigo; Zerossl; Gogetssl; Trustico ];
  (* Retain root signers so deeper hierarchies can be grown lazily. The
     Sectigo-family resellers all chain under the USERTrust root. *)
  Hashtbl.replace t.root_signers Lets_encrypt le_root;
  Hashtbl.replace t.root_signers Digicert dc_root;
  List.iter
    (fun v -> Hashtbl.replace t.root_signers v usertrust)
    [ Sectigo; Zerossl; Gogetssl; Trustico ];
  Hashtbl.replace t.root_signers Taiwan_ca tw_root;
  Hashtbl.replace t.root_signers Cyber_folks cf_root;
  List.iteri (fun i r -> Hashtbl.replace t.root_signers (Other_ca i) r) other_roots;
  (* Store membership: every public root everywhere, minus the restricted
     roots' missing programs. The CAcert root and hidden government root are
     trusted nowhere, like their real counterparts. *)
  let public_roots =
    [ le_root.Issue.cert; dc_root.Issue.cert; usertrust.Issue.cert; aaa.Issue.cert;
      tw_root.Issue.cert; cf_root.Issue.cert; epki_root.Issue.cert; grca.Issue.cert ]
    @ List.map (fun r -> r.Issue.cert) other_roots
    @ t.legacy_roots
  in
  let stores =
    List.map
      (fun program ->
        let extra =
          List.filter_map
            (fun (root, missing) ->
              if List.mem program missing then None else Some root)
            restricted
        in
        (program, Root_store.make (Root_store.program_to_string program) (public_roots @ extra)))
      Root_store.all_programs
  in
  t.stores <- stores;
  t.union <- Root_store.union "union" (List.map snd stores);
  t

let hierarchy t vendor =
  match Hashtbl.find_opt t.hierarchies vendor with
  | Some h -> h
  | None -> invalid_arg ("Universe: no hierarchy for " ^ vendor_to_string vendor)

(* A deeper chain under the vendor's real root: root -> Tier_n -> ... ->
   Tier_1 -> issuing. Every certificate's AIA points at its parent's
   published location, so these chains are fully AIA-chaseable. [levels]
   counts the tiers between root and the issuing CA; the hierarchy therefore
   has [levels + 1] intermediates. *)
let make_deep t vendor ~levels =
  let root =
    match Hashtbl.find_opt t.root_signers vendor with
    | Some r -> r
    | None -> invalid_arg ("Universe: no retained root for " ^ vendor_to_string vendor)
  in
  let h = hierarchy t vendor in
  let root_cert = List.nth h.above (List.length h.above - 1) in
  let host =
    let base = String.lowercase_ascii (vendor_to_string vendor) in
    "deep." ^ String.map (function ' ' | '\'' | '_' -> '-' | c -> c) base ^ ".sim"
  in
  let root_uri = aia_uri ~host ~file:"root" in
  Aia_repo.publish t.aia ~uri:root_uri root_cert;
  let rec build parent parent_uri above k =
    if k = 0 then (parent, parent_uri, above)
    else begin
      let uri = aia_uri ~host ~file:(Printf.sprintf "tier%d" k) in
      let signer =
        Issue.issue t.rng ~parent
          (intermediate_spec ~now:t.now
             ~cn:(Printf.sprintf "%s Tier %d CA" (vendor_to_string vendor) k)
             ~o:(vendor_to_string vendor) ~aia:parent_uri ())
      in
      Aia_repo.publish t.aia ~uri signer.Issue.cert;
      build signer uri (signer.Issue.cert :: above) (k - 1)
    end
  in
  let top_tier, top_uri, above = build root root_uri [ root_cert ] levels in
  let issuing_uri = aia_uri ~host ~file:"issuing" in
  let issuing =
    Issue.issue t.rng ~parent:top_tier
      (intermediate_spec ~now:t.now
         ~cn:(Printf.sprintf "%s Deep DV CA" (vendor_to_string vendor))
         ~o:(vendor_to_string vendor) ~path_len:0 ~aia:top_uri ())
  in
  Aia_repo.publish t.aia ~uri:issuing_uri issuing.Issue.cert;
  { issuing; above; issuing_aia_uri = issuing_uri }

let hierarchy_deep t vendor =
  match Hashtbl.find_opt t.deep_hierarchies (vendor, 2) with
  | Some h -> h
  | None ->
      let h = make_deep t vendor ~levels:1 in
      Hashtbl.replace t.deep_hierarchies (vendor, 2) h;
      h

let hierarchy_deep4 t vendor =
  match Hashtbl.find_opt t.deep_hierarchies (vendor, 4) with
  | Some h -> h
  | None ->
      let h = make_deep t vendor ~levels:3 in
      Hashtbl.replace t.deep_hierarchies (vendor, 4) h;
      h

let hierarchy_no_akid t vendor =
  match Hashtbl.find_opt t.no_akid_hierarchies vendor with
  | Some h -> h
  | None -> hierarchy t vendor

let cross_pair t vendor = Hashtbl.find_opt t.crosses vendor

let mint_leaf t vendor ~domain ?hierarchy:h ?(faults = []) ?(no_aia = false)
    ?not_before ?not_after () =
  let h = match h with Some h -> h | None -> hierarchy t vendor in
  let not_before = Option.value not_before ~default:(Vtime.add_months t.now (-2)) in
  let not_after = Option.value not_after ~default:(Vtime.add_months not_before 12) in
  Issue.issue t.rng ~parent:h.issuing
    (Issue.spec
       ~san:[ Extension.Dns domain ]
       ~not_before ~not_after
       ~aia_ca_issuers:(if no_aia then [] else [ h.issuing_aia_uri ])
       ~faults
       (Dn.make ~cn:domain ()))

let sectigo_usertrust_self t = get "sectigo_usertrust_self" t.sectigo_usertrust_self_
let sectigo_usertrust_cross t = get "sectigo_usertrust_cross" t.sectigo_usertrust_cross_
let sectigo_legacy_root t = get "sectigo_legacy_root" t.sectigo_legacy_root_

let sectigo_usertrust_cross_expired t =
  get "sectigo_usertrust_cross_expired" t.sectigo_usertrust_cross_expired_

let digicert_ca1_recent t = get "digicert_ca1_recent" t.digicert_ca1_recent_
let digicert_ca1_old t = get "digicert_ca1_old" t.digicert_ca1_old_
let digicert_signer t = get "digicert_signer" t.digicert_signer_
let taiwan_root t = get "taiwan_root" t.taiwan_root_
let taiwan_global t = get "taiwan_global" t.taiwan_global_
let epki_hierarchy t = get "epki" t.epki_
let gov_hidden_root t = get "gov_hidden_root" t.gov_hidden_root_
let gov_grca_hierarchy t = get "gov_grca" t.gov_grca_
let gov_moex_intermediate t = get "gov_moex_intermediate" t.gov_moex_intermediate_
let gov_moex_cross_by_hidden t = get "gov_moex_cross_by_hidden" t.gov_moex_cross_by_hidden_
let cacert_class3 t = get "cacert_class3" t.cacert_class3_
let cacert_leaf_signer t = get "cacert_leaf_signer" t.cacert_leaf_signer_

let restricted_find t name =
  match List.assoc_opt name t.restricted_ with
  | Some r -> r
  | None -> invalid_arg ("Universe: no restricted hierarchy " ^ name)

let restricted_mc_recoverable t = restricted_find t "mc-recoverable"
let restricted_mc_dead_end t = restricted_find t "mc-dead-end"
let restricted_ms_recoverable t = restricted_find t "ms-recoverable"
let restricted_ms_dead_end t = restricted_find t "ms-dead-end"
let restricted_apple_recoverable t = restricted_find t "apple-recoverable"
let restricted_apple_dead_end t = restricted_find t "apple-dead-end"
