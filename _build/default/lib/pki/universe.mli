(** The synthetic Web-PKI world.

    One [Universe.t] holds every CA hierarchy the experiments need: the eight
    CAs/resellers of Table 11 (with realistic shapes: Let's Encrypt's short
    chain, Sectigo's USERTrust cross-sign behind Figure 2c, TAIWAN-CA's
    omitted "TWCA Global Root CA" intermediate, DigiCert's re-issued
    intermediate pair of Figure 5), a pool of generic CAs for the unattributed
    half of the population, special-purpose hierarchies for the Table 8
    root-store experiments, the CAcert-style self-referential AIA corner case,
    and an untrusted government root for the Figure 4 backtracking scenario.

    All intermediates and roots are published in the {!Aia_repo}; the four
    root-program stores are built with controlled membership differences. *)

open Chaoschain_x509
module Prng = Chaoschain_crypto.Prng

type vendor =
  | Lets_encrypt
  | Digicert
  | Sectigo
  | Zerossl
  | Gogetssl
  | Taiwan_ca
  | Cyber_folks
  | Trustico
  | Other_ca of int  (** one of the generic CA hierarchies, by index *)

val vendor_to_string : vendor -> string
val named_vendors : vendor list
(** The eight vendors of Table 11, in the paper's column order. *)

val other_ca_count : int
(** How many generic hierarchies exist; [Other_ca i] needs [i] below this. *)

type hierarchy = {
  issuing : Issue.signer;        (** the intermediate that signs leaves *)
  above : Cert.t list;           (** certificates above the issuing CA, in
                                     issuance order towards the root; the last
                                     element is the self-signed root *)
  issuing_aia_uri : string;      (** where the issuing CA's cert is published *)
}

type t

val create : ?seed:int64 -> unit -> t

val aia : t -> Aia_repo.t
val store : t -> Root_store.program -> Root_store.t
val union_store : t -> Root_store.t
val rng : t -> Prng.t
val now : t -> Vtime.t
(** The simulation's idea of "today" (certificate validity is judged against
    this instant everywhere). *)

val hierarchy : t -> vendor -> hierarchy
(** The vendor's standard hierarchy. *)

val hierarchy_deep : t -> vendor -> hierarchy
(** A two-intermediate hierarchy under the vendor's root (root -> G2 ->
    issuing), created lazily and cached. Reversed-sequence scenarios need at
    least two intermediates to exhibit the paper's 1->2->0 structure. *)

val hierarchy_deep4 : t -> vendor -> hierarchy
(** A four-intermediate hierarchy (for chains missing two certificates that
    are still AIA-recoverable). *)

val hierarchy_no_akid : t -> vendor -> hierarchy
(** A parallel hierarchy under the same root whose issuing intermediate omits
    its AKID — the mechanism behind the large no-AIA effect of Table 8 (store
    matching by AKID/SKID cannot succeed; only an AIA fetch of the root
    confirms completeness). Available for {!Lets_encrypt}, {!Digicert},
    {!Sectigo} and the generic CAs; other vendors fall back to their standard
    hierarchy. *)

val cross_pair : t -> vendor -> (Cert.t * Cert.t) option
(** [(self, cross)] for vendors whose issuing-CA parent is also cross-signed
    by a legacy store root — the raw material of multiple-path chains.
    Available for Let's Encrypt, DigiCert, the Sectigo family and
    [Other_ca 0]. *)

val mint_leaf :
  t -> vendor -> domain:string ->
  ?hierarchy:hierarchy ->
  ?faults:Issue.fault list ->
  ?no_aia:bool ->
  ?not_before:Vtime.t -> ?not_after:Vtime.t ->
  unit -> Issue.signer
(** Issue a leaf for [domain] (CN and SAN dNSName) from the vendor's issuing
    CA. By default the leaf carries a caIssuers URI pointing at its issuer's
    published location; [no_aia] suppresses it (the 579 "AIA missing" chains),
    and the [Issue.fault] list flows through for broken test leaves. *)

(** {1 Named special constructs used by experiments and figures} *)

val sectigo_usertrust_self : t -> Cert.t
(** "USERTrust RSA Certification Authority", self-signed (node 3 in
    Figure 2c). *)

val sectigo_usertrust_cross : t -> Cert.t
(** The same subject and key cross-signed by the legacy "AAA Certificate
    Services" root (node 2 in Figure 2c). *)

val sectigo_legacy_root : t -> Cert.t
(** "AAA Certificate Services", the legacy root that cross-signs. *)

val sectigo_usertrust_cross_expired : t -> Cert.t
(** An expired cross-sign, for the 29 expired-cross-sign chains. *)

val digicert_ca1_recent : t -> Cert.t
(** Figure 5 candidate A: the more recently issued "DigiCert TLS RSA SHA256
    2020 CA1". *)

val digicert_ca1_old : t -> Cert.t
(** Figure 5 candidate B: same subject and key, earlier validity. *)

val digicert_signer : t -> Issue.signer
(** Signer whose certificate is {!digicert_ca1_recent} (same key as the old
    variant, so either candidate completes a valid path). *)

val taiwan_root : t -> Cert.t
(** "TWCA Root Certification Authority" — present in all stores. *)

val taiwan_global : t -> Issue.signer
(** "TWCA Global Root CA", the intermediate TAIWAN-CA deployments omit. *)

val epki_hierarchy : t -> hierarchy
(** "ePKI Root Certification Authority" chain used by the Figure 2d
    (archives.gov.tw-like) scenario. *)

val gov_hidden_root : t -> Issue.signer
(** A self-signed government root present in no store (node 1 of Figure 4). *)

val gov_grca_hierarchy : t -> hierarchy
(** The trusted government hierarchy that also signs the Figure 4
    intermediate, enabling the correct path 3. *)

val gov_moex_intermediate : t -> Issue.signer
(** The intermediate of Figure 4, reachable both from the hidden root and
    from the trusted hierarchy (via cross-signs). *)

val gov_moex_cross_by_hidden : t -> Cert.t
(** Cross-sign of the Figure 4 intermediate key by the hidden root. *)

val cacert_class3 : t -> Cert.t
(** A "CAcert Class 3" style intermediate whose AIA URI serves the
    certificate itself — the single wrong-AIA chain of section 4.3. *)

val cacert_leaf_signer : t -> Issue.signer
(** Signer backing {!cacert_class3}, to mint the leaf below it. *)

(** {1 Restricted-store hierarchies (Table 8)} *)

type restricted = {
  r_hierarchy : hierarchy;     (** issuing intermediate chained to the
                                    restricted root *)
  r_root : Cert.t;
  r_missing_from : Root_store.program list;  (** stores lacking this root *)
  r_intermediate_has_aia : bool;
}

val restricted_mc_recoverable : t -> restricted
(** Root absent from Mozilla and Chrome; intermediate has AIA, so those
    clients recover completeness by fetching the root. *)

val restricted_mc_dead_end : t -> restricted
(** Root absent from Mozilla and Chrome and no AIA anywhere: the 66
    permanently-additional incomplete chains for those stores. *)

val restricted_ms_recoverable : t -> restricted
val restricted_ms_dead_end : t -> restricted
val restricted_apple_recoverable : t -> restricted
val restricted_apple_dead_end : t -> restricted

val broken_aia_uri_404 : t -> string
(** A URI that always returns 404, for the "URI access fails" chains. *)

val broken_aia_uri_timeout : t -> string
