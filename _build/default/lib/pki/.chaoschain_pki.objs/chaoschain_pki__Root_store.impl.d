lib/pki/root_store.ml: Cert Chaoschain_x509 Dn List Map Option String
