lib/pki/root_store.mli: Cert Chaoschain_x509 Dn
