lib/pki/aia_repo.ml: Cert Chaoschain_x509 Hashtbl List Option Printf Relation
