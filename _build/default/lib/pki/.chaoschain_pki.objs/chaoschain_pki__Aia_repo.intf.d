lib/pki/aia_repo.mli: Cert Chaoschain_x509
