lib/pki/crl_registry.ml: Cert Chaoschain_x509 Crl Dn Issue List
