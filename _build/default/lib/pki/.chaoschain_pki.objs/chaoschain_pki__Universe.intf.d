lib/pki/universe.mli: Aia_repo Cert Chaoschain_crypto Chaoschain_x509 Issue Root_store Vtime
