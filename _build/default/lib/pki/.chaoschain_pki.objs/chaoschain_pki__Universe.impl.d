lib/pki/universe.ml: Aia_repo Cert Chaoschain_crypto Chaoschain_x509 Dn Extension Hashtbl Issue List Option Printf Root_store String Vtime
