lib/pki/crl_registry.mli: Cert Chaoschain_crypto Chaoschain_x509 Crl Dn Issue Vtime
