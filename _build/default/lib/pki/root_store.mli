(** Trust-anchor stores modelling the four root programs the paper compares
    (Mozilla, Chrome, Microsoft, Apple) plus their concatenation, which the
    server-side completeness analysis uses as its baseline. *)

open Chaoschain_x509

type program = Mozilla | Chrome | Microsoft | Apple

val program_to_string : program -> string
val all_programs : program list

type t
(** An immutable set of trusted root certificates, indexed by fingerprint,
    SKID and subject DN. *)

val make : string -> Cert.t list -> t
(** [make name roots]. *)

val name : t -> string
val size : t -> int
val certs : t -> Cert.t list
val add : t -> Cert.t -> t

val mem : t -> Cert.t -> bool
(** Bit-for-bit membership. *)

val mem_skid : t -> string -> bool
(** Whether any trusted root carries the given SKID — the store-matching step
    of the paper's completeness algorithm. *)

val find_by_skid : t -> string -> Cert.t list

val find_by_subject : t -> Dn.t -> Cert.t list
(** Roots whose subject DN name-chains to the given DN — how clients locate
    trust anchors for a partial chain. *)

val issuer_candidates : t -> Cert.t -> Cert.t list
(** Roots that could have issued the given certificate, by name chaining. *)

val union : string -> t list -> t
(** Deduplicated concatenation. *)
