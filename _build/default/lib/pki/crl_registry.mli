(** Distribution point for certificate revocation lists: one current CRL per
    issuing CA, looked up by issuer DN — the stand-in for fetching the CRL
    from a CRL distribution point URI. *)

open Chaoschain_x509

type t

val create : unit -> t

val register : t -> Crl.t -> unit
(** Install (or replace) the CRL for its issuer. *)

val lookup : t -> Dn.t -> Crl.t option

val lookup_for : t -> issuer:Cert.t -> Crl.t option
(** The CRL governing certificates issued by [issuer]. *)

val revoke :
  Chaoschain_crypto.Prng.t -> t -> issuer:Issue.signer -> now:Vtime.t ->
  ?reason:Crl.revocation_reason -> Cert.t -> unit
(** Convenience: add the certificate's serial to its issuer's CRL (reissuing
    the CRL with an updated window). *)

val status : t -> issuer:Cert.t -> now:Vtime.t -> Cert.t -> Crl.status
