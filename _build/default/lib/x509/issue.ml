module Keys = Chaoschain_crypto.Keys
module Prng = Chaoschain_crypto.Prng

type signer = { key : Keys.private_key; cert : Cert.t }

type fault =
  | No_skid
  | Wrong_skid
  | No_akid
  | Wrong_akid
  | Akid_by_name
  | No_key_usage
  | Wrong_key_usage
  | No_basic_constraints
  | Not_a_ca
  | Wrong_path_len of int
  | Broken_signature
  | Expired
  | Not_yet_valid

type spec = {
  subject : Dn.t;
  san : Extension.general_name list;
  algorithm : Keys.algorithm;
  not_before : Vtime.t;
  not_after : Vtime.t;
  is_ca : bool;
  path_len : int option;
  aia_ca_issuers : string list;
  faults : fault list;
}

let default_not_before = Vtime.make ~y:2024 ~m:3 ~d:1 ()
let default_not_after = Vtime.make ~y:2025 ~m:3 ~d:1 ()

let spec ?(san = []) ?(algorithm = Keys.Rsa_2048) ?(not_before = default_not_before)
    ?(not_after = default_not_after) ?(is_ca = false) ?path_len
    ?(aia_ca_issuers = []) ?(faults = []) subject =
  { subject; san; algorithm; not_before; not_after; is_ca; path_len;
    aia_ca_issuers; faults }

let has_fault f spec = List.mem f spec.faults

let find_wrong_path_len spec =
  List.find_map (function Wrong_path_len n -> Some n | _ -> None) spec.faults

let adjusted_validity spec =
  if has_fault Expired spec then
    (Vtime.add_years spec.not_before (-3), Vtime.add_years spec.not_after (-3))
  else if has_fault Not_yet_valid spec then
    (Vtime.add_years spec.not_before 3, Vtime.add_years spec.not_after 3)
  else (spec.not_before, spec.not_after)

let build_extensions rng spec ~own_key ~issuer_info =
  let skid_ext =
    if has_fault No_skid spec then []
    else if has_fault Wrong_skid spec then
      [ Extension.subject_key_id (Prng.bytes rng 20) ]
    else [ Extension.subject_key_id (Keys.key_id own_key) ]
  in
  let akid_ext =
    match issuer_info with
    | None -> [] (* self-signed: conventionally no AKID in our universe *)
    | Some (issuer_dn, issuer_serial, issuer_kid) ->
        if has_fault No_akid spec then []
        else if has_fault Wrong_akid spec then
          [ Extension.authority_key_id (Prng.bytes rng 20) ]
        else if has_fault Akid_by_name spec then
          [ Extension.authority_key_id_by_name issuer_dn issuer_serial ]
        else [ Extension.authority_key_id issuer_kid ]
  in
  let bc_ext =
    if has_fault No_basic_constraints spec then []
    else if has_fault Not_a_ca spec then
      [ Extension.basic_constraints ~ca:false () ]
    else if spec.is_ca then
      let path_len = match find_wrong_path_len spec with
        | Some n -> Some n
        | None -> spec.path_len
      in
      [ Extension.basic_constraints ~ca:true ?path_len () ]
    else [ Extension.basic_constraints ~ca:false () ]
  in
  let ku_ext =
    if has_fault No_key_usage spec then []
    else if has_fault Wrong_key_usage spec then
      [ Extension.key_usage [ Extension.Digital_signature ] ]
    else if spec.is_ca then
      [ Extension.key_usage [ Extension.Key_cert_sign; Extension.Crl_sign ] ]
    else
      [ Extension.key_usage [ Extension.Digital_signature; Extension.Key_encipherment ] ]
  in
  let eku_ext =
    if spec.is_ca then []
    else
      [ Extension.ext_key_usage
          [ Chaoschain_der.Oid.eku_server_auth; Chaoschain_der.Oid.eku_client_auth ] ]
  in
  let san_ext =
    match spec.san with [] -> [] | names -> [ Extension.subject_alt_name names ]
  in
  let aia_ext =
    match spec.aia_ca_issuers with
    | [] -> []
    | uris -> [ Extension.authority_info_access ~ca_issuers:uris () ]
  in
  bc_ext @ ku_ext @ eku_ext @ san_ext @ skid_ext @ akid_ext @ aia_ext

let fresh_serial rng =
  (* Positive INTEGER: force the top bit clear on the first octet. *)
  let raw = Prng.bytes rng 12 in
  String.init 12 (fun i -> if i = 0 then Char.chr (Char.code raw.[0] land 0x7F) else raw.[i])

(* Signing needs the TBS DER, which Cert.create computes; so assemble once
   with a placeholder signature to obtain the signed bytes, then re-create
   with the real signature over exactly those bytes. *)
let make_cert rng spec ~(subject_key : Keys.public_key) ~(signer_key : Keys.private_key)
    ~issuer_dn ~issuer_info =
  let not_before, not_after = adjusted_validity spec in
  let tbs =
    { Cert.version = 2;
      serial = fresh_serial rng;
      sig_alg = (Keys.public_of_private signer_key).Keys.alg;
      issuer = issuer_dn;
      not_before;
      not_after;
      subject = spec.subject;
      public_key = subject_key;
      extensions = build_extensions rng spec ~own_key:subject_key ~issuer_info }
  in
  (* Obtain the exact signed bytes via a throwaway assembly, then re-create
     with the real signature over those bytes. *)
  let probe = Cert.create tbs { Keys.sig_alg = tbs.Cert.sig_alg; sig_bytes = String.make 32 '\x00' } in
  let message = Cert.tbs_der probe in
  let signature =
    if has_fault Broken_signature spec then
      Keys.forge_garbage rng (Keys.public_of_private signer_key).Keys.alg
    else Keys.sign signer_key message
  in
  Cert.create tbs signature

let self_signed rng spec =
  let key = Keys.generate rng spec.algorithm in
  let cert =
    make_cert rng spec ~subject_key:(Keys.public_of_private key) ~signer_key:key
      ~issuer_dn:spec.subject ~issuer_info:None
  in
  { key; cert }

let issuer_info_of parent =
  ( Cert.subject parent.cert,
    Cert.serial parent.cert,
    match Cert.subject_key_id parent.cert with
    | Some kid -> kid
    | None -> Keys.key_id (Cert.public_key parent.cert) )

let issue rng ~parent spec =
  let key = Keys.generate rng spec.algorithm in
  let cert =
    make_cert rng spec ~subject_key:(Keys.public_of_private key) ~signer_key:parent.key
      ~issuer_dn:(Cert.subject parent.cert)
      ~issuer_info:(Some (issuer_info_of parent))
  in
  { key; cert }

let issue_cert rng ~parent spec = (issue rng ~parent spec).cert

let cross_sign rng ~parent ~existing ?(faults = []) ?not_before ?not_after () =
  let base = Cert.tbs existing.cert in
  let spec =
    { subject = base.Cert.subject;
      san = [];
      algorithm = base.Cert.public_key.Keys.alg;
      not_before = Option.value not_before ~default:base.Cert.not_before;
      not_after = Option.value not_after ~default:base.Cert.not_after;
      is_ca = Cert.is_ca existing.cert;
      path_len =
        (match Cert.basic_constraints existing.cert with
        | Some { Extension.path_len; _ } -> path_len
        | None -> None);
      aia_ca_issuers = Cert.aia_ca_issuers existing.cert;
      faults }
  in
  make_cert rng spec
    ~subject_key:(Keys.public_of_private existing.key)
    ~signer_key:parent.key
    ~issuer_dn:(Cert.subject parent.cert)
    ~issuer_info:(Some (issuer_info_of parent))

let reissue rng ~parent ~existing ~not_before ~not_after =
  cross_sign rng ~parent ~existing ~not_before ~not_after ()
