(** Certificate validity timestamps.

    A tiny proleptic-Gregorian calendar sufficient for [notBefore]/[notAfter]
    comparisons, UTCTime/GeneralizedTime round-trips, and the validity-period
    arithmetic the priority tests need (e.g. "same start date but a validity
    period of 10 years"). No timezone handling: Web PKI times are GMT. *)

type t
(** An instant with one-second resolution. Totally ordered. *)

val make : y:int -> m:int -> d:int -> ?hh:int -> ?mm:int -> ?ss:int -> unit -> t
(** Raises [Invalid_argument] on out-of-range fields (month 1..12, day valid
    for the month, time fields within range). *)

val ymd : t -> int * int * int
val hms : t -> int * int * int

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val min : t -> t -> t
val max : t -> t -> t

val add_days : t -> int -> t
val add_years : t -> int -> t
(** Feb 29 clamps to Feb 28 in non-leap target years. *)

val add_months : t -> int -> t
(** Day-of-month clamps to the target month's length. *)

val diff_days : t -> t -> int
(** [diff_days a b] is the (possibly negative) whole days from [b] to [a]. *)

val to_utctime : t -> string
(** ["YYMMDDHHMMSSZ"]; raises [Invalid_argument] outside 1950-2049 per the
    RFC 5280 UTCTime window. *)

val of_utctime : string -> (t, string) result
(** Two-digit years map per RFC 5280: 00-49 => 20xx, 50-99 => 19xx. *)

val to_generalized : t -> string
(** ["YYYYMMDDHHMMSSZ"]. *)

val of_generalized : string -> (t, string) result

val to_der_time : t -> Chaoschain_der.Der.t
(** UTCTime when the year fits the 1950-2049 window, GeneralizedTime
    otherwise, as RFC 5280 section 4.1.2.5 requires. *)

val of_der_time : Chaoschain_der.Der.t -> (t, string) result

val pp : Format.formatter -> t -> unit
(** OpenSSL text style: ["Apr 14 00:00:00 2021 GMT"]. *)

val to_string : t -> string
