(** Issuance-relationship predicates between certificate pairs.

    Section 3.1 of the paper distils three criteria for "certificate A issued
    certificate B": (1) A's public key verifies B's signature, (2) A's subject
    matches B's issuer, (3) A's SKID matches B's AKID — with the flexibility
    that when a KID field is absent, satisfying either (2) or (3) suffices.
    These predicates are shared by the server-side compliance analyzer and the
    client-side path builders (whose *priority* decisions additionally rank
    the {!kid_status} values differently per client). *)

type kid_status =
  | Kid_match    (** both sides present and equal *)
  | Kid_absent   (** issuer SKID or child AKID (or both) missing *)
  | Kid_mismatch (** both present, different *)

val kid_status_to_string : kid_status -> string

val kid_status : issuer:Cert.t -> child:Cert.t -> kid_status
(** Compares the candidate issuer's SKID with the child's AKID keyIdentifier.
    An AKID that carries only issuer-name/serial counts as absent for the
    keyid comparison. *)

val name_chains : issuer:Cert.t -> child:Cert.t -> bool
(** Criterion (2): issuer.subject == child.issuer under RFC 5280 loose
    comparison. *)

val signature_ok : issuer:Cert.t -> child:Cert.t -> bool
(** Criterion (1): the candidate issuer's public key verifies the child's
    signature over the child's TBS bytes. *)

val sig_alg_compatible : issuer:Cert.t -> child:Cert.t -> bool
(** Whether the child's signature algorithm is one the issuer's key type can
    produce — the extra check OpenSSL applies while ranking candidates. *)

val issued : issuer:Cert.t -> child:Cert.t -> bool
(** The paper's flexible rule: criterion (1) holds, and (2) or (3) holds. *)

val issued_by_name : issuer:Cert.t -> child:Cert.t -> bool
(** Criteria (2)/(3) only — the *candidate* relation used during path
    construction, before any signature is checked. A candidate issuer is one
    that name-chains; the KID comparison then ranks candidates. *)
