module Der = Chaoschain_der.Der
module Oid = Chaoschain_der.Oid

type attr = { typ : Oid.t; value : string }
type rdn = attr list
type t = rdn list

let empty = []

let of_attrs pairs = List.map (fun (typ, value) -> [ { typ; value } ]) pairs

let make ?c ?st ?l ?o ?ou ?cn () =
  let add typ v acc = match v with None -> acc | Some value -> (typ, value) :: acc in
  of_attrs
    (List.rev
       (add Oid.at_common_name cn
          (add Oid.at_org_unit ou
             (add Oid.at_organization o
                (add Oid.at_locality l
                   (add Oid.at_state st (add Oid.at_country c [])))))))

let find_attr typ t =
  List.find_map
    (fun rdn -> List.find_map (fun a -> if Oid.equal a.typ typ then Some a.value else None) rdn)
    t

let common_name = find_attr Oid.at_common_name
let organization = find_attr Oid.at_organization

(* caseIgnoreMatch with internal whitespace folding, per RFC 5280 sec. 7.1's
   simplified string comparison. *)
let fold_value s =
  let buf = Buffer.create (String.length s) in
  let pending_space = ref false in
  let started = ref false in
  String.iter
    (fun c ->
      match c with
      | ' ' | '\t' -> if !started then pending_space := true
      | c ->
          if !pending_space then begin
            Buffer.add_char buf ' ';
            pending_space := false
          end;
          started := true;
          Buffer.add_char buf (Char.lowercase_ascii c))
    s;
  Buffer.contents buf

let equal_attr_loose a b = Oid.equal a.typ b.typ && String.equal (fold_value a.value) (fold_value b.value)
let equal_attr_strict a b = Oid.equal a.typ b.typ && String.equal a.value b.value

let equal_with attr_eq a b =
  List.length a = List.length b
  && List.for_all2
       (fun ra rb -> List.length ra = List.length rb && List.for_all2 attr_eq ra rb)
       a b

let equal_strict = equal_with equal_attr_strict
let equal = equal_with equal_attr_loose

let compare a b =
  let attr_cmp x y =
    match Oid.compare x.typ y.typ with 0 -> String.compare x.value y.value | c -> c
  in
  List.compare (List.compare attr_cmp) a b

let is_empty t = t = []

let attr_abbrev typ =
  if Oid.equal typ Oid.at_common_name then "CN"
  else if Oid.equal typ Oid.at_country then "C"
  else if Oid.equal typ Oid.at_locality then "L"
  else if Oid.equal typ Oid.at_state then "ST"
  else if Oid.equal typ Oid.at_organization then "O"
  else if Oid.equal typ Oid.at_org_unit then "OU"
  else Oid.to_string typ

let to_string t =
  String.concat ", "
    (List.map
       (fun rdn ->
         String.concat "+"
           (List.map (fun a -> Printf.sprintf "%s=%s" (attr_abbrev a.typ) a.value) rdn))
       t)

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Country names are PrintableString in the wild; everything else we emit as
   UTF8String. The decoder accepts either. *)
let attr_to_der a =
  let value =
    if Oid.equal a.typ Oid.at_country then Der.printable_string a.value
    else Der.utf8_string a.value
  in
  Der.sequence [ Der.oid a.typ; value ]

let to_der t = Der.sequence (List.map (fun rdn -> Der.set (List.map attr_to_der rdn)) t)

let ( let* ) = Result.bind

let attr_of_der v =
  let* fields = Der.as_sequence v in
  match fields with
  | [ typ_v; value_v ] ->
      let* typ = Der.as_oid typ_v in
      let* value = Der.as_string value_v in
      Ok { typ; value }
  | _ -> Error "AttributeTypeAndValue: expected 2 fields"

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let of_der v =
  let* rdns = Der.as_sequence v in
  map_result
    (fun rdn_v ->
      let* attrs = Der.as_set rdn_v in
      if attrs = [] then Error "RDN: empty set" else map_result attr_of_der attrs)
    rdns
