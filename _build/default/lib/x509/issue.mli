(** Certificate minting: the CA side of the simulation.

    This is how every certificate in the repository comes to exist — the
    synthetic CA universe, the nine capability test chains of Table 2 and the
    figure scenarios all mint through this API. The [fault] list deliberately
    corrupts specific aspects of an otherwise well-formed certificate; that is
    the mechanism behind the priority-preference tests (e.g. an intermediate
    whose AKID mismatches, or whose KeyUsage lacks keyCertSign). *)

module Keys = Chaoschain_crypto.Keys
module Prng = Chaoschain_crypto.Prng

type signer = { key : Keys.private_key; cert : Cert.t }
(** A CA able to issue: its private key plus its own certificate. *)

type fault =
  | No_skid                    (** omit the SubjectKeyIdentifier extension *)
  | Wrong_skid                 (** SKID that does not match the key — makes
                                   this certificate's KID *mismatch* any
                                   child AKID referencing the real key *)
  | No_akid                    (** omit the AuthorityKeyIdentifier extension *)
  | Wrong_akid                 (** AKID keyid that matches no real key *)
  | Akid_by_name               (** AKID via issuer name + serial, no keyid *)
  | No_key_usage               (** omit the KeyUsage extension *)
  | Wrong_key_usage            (** CA cert without keyCertSign *)
  | No_basic_constraints       (** omit BasicConstraints entirely *)
  | Not_a_ca                   (** BasicConstraints with cA=false on a CA *)
  | Wrong_path_len of int      (** force an incorrect pathLenConstraint *)
  | Broken_signature           (** random bytes instead of a real signature *)
  | Expired                    (** validity window entirely in the past *)
  | Not_yet_valid              (** validity window entirely in the future *)

type spec = {
  subject : Dn.t;
  san : Extension.general_name list;
  algorithm : Keys.algorithm;
  not_before : Vtime.t;
  not_after : Vtime.t;
  is_ca : bool;
  path_len : int option;       (** pathLenConstraint when [is_ca] *)
  aia_ca_issuers : string list;(** caIssuers URIs to embed *)
  faults : fault list;
}

val spec :
  ?san:Extension.general_name list ->
  ?algorithm:Keys.algorithm ->
  ?not_before:Vtime.t ->
  ?not_after:Vtime.t ->
  ?is_ca:bool ->
  ?path_len:int ->
  ?aia_ca_issuers:string list ->
  ?faults:fault list ->
  Dn.t ->
  spec
(** Defaults: no SAN, RSA-2048, valid 2024-03-01 .. 2025-03-01, not a CA,
    no pathLen, no AIA, no faults. *)

val self_signed : Prng.t -> spec -> signer
(** Mint a self-signed certificate (root CA when [is_ca], or the self-signed
    leaf of capability test 9 when not). *)

val issue : Prng.t -> parent:signer -> spec -> signer
(** Mint a certificate for a fresh key pair, signed by [parent]. The AKID
    references the parent's SKID unless a fault says otherwise. *)

val issue_cert : Prng.t -> parent:signer -> spec -> Cert.t
(** {!issue} discarding the new private key. *)

val cross_sign : Prng.t -> parent:signer -> existing:signer -> ?faults:fault list ->
  ?not_before:Vtime.t -> ?not_after:Vtime.t -> unit -> Cert.t
(** Re-certify [existing]'s subject and public key under a different parent —
    the cross-signing construct behind the multiple-paths topologies
    (Figure 2c). The result shares subject DN, SKID and key with
    [existing.cert] but has a different issuer and signature. *)

val reissue : Prng.t -> parent:signer -> existing:signer ->
  not_before:Vtime.t -> not_after:Vtime.t -> Cert.t
(** Same subject, same key, same issuer, new validity window — how the
    "differs only in validity period" candidate sets of Figure 5 and the
    stale-leaf scenarios are produced. *)
