module Keys = Chaoschain_crypto.Keys

type kid_status = Kid_match | Kid_absent | Kid_mismatch

let kid_status_to_string = function
  | Kid_match -> "match"
  | Kid_absent -> "absent"
  | Kid_mismatch -> "mismatch"

let kid_status ~issuer ~child =
  match (Cert.subject_key_id issuer, Cert.authority_key_id child) with
  | Some skid, Some { Extension.akid_key_id = Some akid; _ } ->
      if String.equal skid akid then Kid_match else Kid_mismatch
  | _ -> Kid_absent

let name_chains ~issuer ~child = Dn.equal (Cert.subject issuer) (Cert.issuer child)

(* Signature checks dominate large-corpus runs (every check hashes the
   child's TBS); the verdict for a given (issuer, child) pair never changes,
   so memoize on the pair of fingerprints. *)
let sig_memo : (string, bool) Hashtbl.t = Hashtbl.create 4096

let signature_ok ~issuer ~child =
  let key = Cert.fingerprint issuer ^ Cert.fingerprint child in
  match Hashtbl.find_opt sig_memo key with
  | Some v -> v
  | None ->
      let v =
        Keys.verify (Cert.public_key issuer) (Cert.tbs_der child) (Cert.signature child)
      in
      if Hashtbl.length sig_memo > 1_000_000 then Hashtbl.reset sig_memo;
      Hashtbl.add sig_memo key v;
      v

let sig_alg_compatible ~issuer ~child =
  let issuer_alg = (Cert.public_key issuer).Keys.alg in
  let child_sig = Cert.sig_alg child in
  match (issuer_alg, child_sig) with
  | (Keys.Rsa_1024 | Keys.Rsa_2048 | Keys.Rsa_4096),
    (Keys.Rsa_1024 | Keys.Rsa_2048 | Keys.Rsa_4096) -> true
  | Keys.Ecdsa_p256, Keys.Ecdsa_p256 | Keys.Ecdsa_p384, Keys.Ecdsa_p384 -> true
  | _ -> false

let issued ~issuer ~child =
  signature_ok ~issuer ~child
  && (name_chains ~issuer ~child || kid_status ~issuer ~child = Kid_match)

let issued_by_name ~issuer ~child =
  name_chains ~issuer ~child || kid_status ~issuer ~child = Kid_match
