module Keys = Chaoschain_crypto.Keys
module Prng = Chaoschain_crypto.Prng
module Der = Chaoschain_der.Der

type revocation_reason =
  | Unspecified
  | Key_compromise
  | Ca_compromise
  | Superseded
  | Cessation_of_operation

let reason_to_string = function
  | Unspecified -> "unspecified"
  | Key_compromise -> "keyCompromise"
  | Ca_compromise -> "cACompromise"
  | Superseded -> "superseded"
  | Cessation_of_operation -> "cessationOfOperation"

type revoked_entry = {
  serial : string;
  revoked_at : Vtime.t;
  reason : revocation_reason;
}

type t = {
  issuer : Dn.t;
  this_update : Vtime.t;
  next_update : Vtime.t;
  entries : revoked_entry list;
  tbs_der : string;
  signature : Keys.signature;
}

let reason_code = function
  | Unspecified -> 0
  | Key_compromise -> 1
  | Ca_compromise -> 2
  | Superseded -> 4
  | Cessation_of_operation -> 5

(* A DER rendering of the TBS part, so the signature covers real bytes. *)
let tbs_to_der issuer this_update next_update entries =
  Der.encode
    (Der.sequence
       [ Der.integer_of_int 1;
         Dn.to_der issuer;
         Vtime.to_der_time this_update;
         Vtime.to_der_time next_update;
         Der.sequence
           (List.map
              (fun e ->
                Der.sequence
                  [ Der.integer_bytes e.serial;
                    Vtime.to_der_time e.revoked_at;
                    Der.integer_of_int (reason_code e.reason) ])
              entries) ])

let issue rng ~issuer ~this_update ?next_update entries =
  ignore rng;
  let next_update =
    Option.value next_update ~default:(Vtime.add_days this_update 30)
  in
  let issuer_dn = Cert.subject issuer.Issue.cert in
  let tbs_der = tbs_to_der issuer_dn this_update next_update entries in
  { issuer = issuer_dn;
    this_update;
    next_update;
    entries;
    tbs_der;
    signature = Keys.sign issuer.Issue.key tbs_der }

let issuer_dn t = t.issuer
let this_update t = t.this_update
let next_update t = t.next_update
let entries t = t.entries
let is_stale t now = Vtime.(t.next_update < now)

let signed_by t cert =
  Dn.equal t.issuer (Cert.subject cert)
  && Keys.verify (Cert.public_key cert) t.tbs_der t.signature

let find_serial t serial =
  List.find_opt (fun e -> String.equal e.serial serial) t.entries

type status = Good | Revoked of revoked_entry | Unknown_status of string

let status_to_string = function
  | Good -> "good"
  | Revoked e -> Printf.sprintf "revoked (%s)" (reason_to_string e.reason)
  | Unknown_status why -> "unknown: " ^ why

let check ~crl ~issuer ~now cert =
  match crl with
  | None -> Unknown_status "no CRL available"
  | Some crl ->
      if not (signed_by crl issuer) then
        Unknown_status "CRL not signed by the certificate's issuer"
      else if is_stale crl now then Unknown_status "CRL is stale"
      else (
        match find_serial crl (Cert.serial cert) with
        | Some e -> Revoked e
        | None -> Good)
