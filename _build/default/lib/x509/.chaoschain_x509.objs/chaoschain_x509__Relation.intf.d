lib/x509/relation.mli: Cert
