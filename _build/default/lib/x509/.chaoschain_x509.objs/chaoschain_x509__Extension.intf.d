lib/x509/extension.mli: Chaoschain_der Dn Format
