lib/x509/dn.ml: Buffer Chaoschain_der Char Format List Printf Result String
