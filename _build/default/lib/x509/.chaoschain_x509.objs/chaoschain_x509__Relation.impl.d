lib/x509/relation.ml: Cert Chaoschain_crypto Dn Extension Hashtbl String
