lib/x509/vtime.ml: Array Chaoschain_der Char Format Printf Result Stdlib String
