lib/x509/cert.ml: Chaoschain_crypto Chaoschain_der Dn Extension Format List Printf Result String Vtime
