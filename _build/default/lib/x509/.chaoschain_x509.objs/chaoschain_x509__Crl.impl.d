lib/x509/crl.ml: Cert Chaoschain_crypto Chaoschain_der Dn Issue List Option Printf String Vtime
