lib/x509/vtime.mli: Chaoschain_der Format
