lib/x509/extension.ml: Chaoschain_crypto Chaoschain_der Char Dn Format List Printf Result Stdlib String
