lib/x509/crl.mli: Cert Chaoschain_crypto Dn Issue Vtime
