lib/x509/dn.mli: Chaoschain_der Format
