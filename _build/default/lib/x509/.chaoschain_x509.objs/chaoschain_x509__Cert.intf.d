lib/x509/cert.mli: Chaoschain_crypto Chaoschain_der Dn Extension Format Vtime
