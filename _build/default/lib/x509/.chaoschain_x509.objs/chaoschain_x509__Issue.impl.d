lib/x509/issue.ml: Cert Chaoschain_crypto Chaoschain_der Char Dn Extension List Option String Vtime
