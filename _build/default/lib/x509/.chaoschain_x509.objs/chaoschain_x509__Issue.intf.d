lib/x509/issue.mli: Cert Chaoschain_crypto Dn Extension Vtime
