module Der = Chaoschain_der.Der
module Oid = Chaoschain_der.Oid

type key_usage_flag =
  | Digital_signature
  | Content_commitment
  | Key_encipherment
  | Data_encipherment
  | Key_agreement
  | Key_cert_sign
  | Crl_sign
  | Encipher_only
  | Decipher_only

let key_usage_flag_to_string = function
  | Digital_signature -> "digitalSignature"
  | Content_commitment -> "contentCommitment"
  | Key_encipherment -> "keyEncipherment"
  | Data_encipherment -> "dataEncipherment"
  | Key_agreement -> "keyAgreement"
  | Key_cert_sign -> "keyCertSign"
  | Crl_sign -> "cRLSign"
  | Encipher_only -> "encipherOnly"
  | Decipher_only -> "decipherOnly"

let flag_bit = function
  | Digital_signature -> 0
  | Content_commitment -> 1
  | Key_encipherment -> 2
  | Data_encipherment -> 3
  | Key_agreement -> 4
  | Key_cert_sign -> 5
  | Crl_sign -> 6
  | Encipher_only -> 7
  | Decipher_only -> 8

let all_flags =
  [ Digital_signature; Content_commitment; Key_encipherment; Data_encipherment;
    Key_agreement; Key_cert_sign; Crl_sign; Encipher_only; Decipher_only ]

type general_name = Dns of string | Ip of string | Uri of string | Directory of Dn.t
type basic_constraints = { ca : bool; path_len : int option }

type authority_key_id = {
  akid_key_id : string option;
  akid_issuer : general_name list;
  akid_serial : string option;
}

type authority_info_access = { ca_issuers : string list; ocsp : string list }

type value =
  | Basic_constraints of basic_constraints
  | Key_usage of key_usage_flag list
  | Ext_key_usage of Oid.t list
  | Subject_alt_name of general_name list
  | Subject_key_id of string
  | Authority_key_id of authority_key_id
  | Authority_info_access of authority_info_access
  | Unknown of Oid.t * string

type t = { critical : bool; value : value }

let basic_constraints ?(critical = true) ~ca ?path_len () =
  { critical; value = Basic_constraints { ca; path_len } }

let key_usage ?(critical = true) flags = { critical; value = Key_usage flags }
let ext_key_usage purposes = { critical = false; value = Ext_key_usage purposes }
let subject_alt_name names = { critical = false; value = Subject_alt_name names }
let subject_key_id kid = { critical = false; value = Subject_key_id kid }

let authority_key_id kid =
  { critical = false;
    value = Authority_key_id { akid_key_id = Some kid; akid_issuer = []; akid_serial = None } }

let authority_key_id_by_name issuer serial =
  { critical = false;
    value =
      Authority_key_id
        { akid_key_id = None; akid_issuer = [ Directory issuer ]; akid_serial = Some serial } }

let authority_info_access ?(ocsp = []) ~ca_issuers () =
  { critical = false; value = Authority_info_access { ca_issuers; ocsp } }

let oid_of_value = function
  | Basic_constraints _ -> Oid.ext_basic_constraints
  | Key_usage _ -> Oid.ext_key_usage
  | Ext_key_usage _ -> Oid.ext_ext_key_usage
  | Subject_alt_name _ -> Oid.ext_subject_alt_name
  | Subject_key_id _ -> Oid.ext_subject_key_id
  | Authority_key_id _ -> Oid.ext_authority_key_id
  | Authority_info_access _ -> Oid.ext_authority_info_access
  | Unknown (oid, _) -> oid

let find oid exts = List.find_opt (fun e -> Oid.equal (oid_of_value e.value) oid) exts

(* --- GeneralName codec (context-specific IMPLICIT tags per RFC 5280) --- *)

let general_name_to_der = function
  | Dns host -> Der.context_prim 2 host
  | Uri uri -> Der.context_prim 6 uri
  | Ip text -> Der.context_prim 7 text
  | Directory dn -> Der.context 4 [ Dn.to_der dn ]

let ( let* ) = Result.bind

let rec map_result f = function
  | [] -> Ok []
  | x :: rest ->
      let* y = f x in
      let* ys = map_result f rest in
      Ok (y :: ys)

let general_name_of_der v =
  match v with
  | Der.Prim ({ cls = Context_specific; number = 2; _ }, c) -> Ok (Dns c)
  | Der.Prim ({ cls = Context_specific; number = 6; _ }, c) -> Ok (Uri c)
  | Der.Prim ({ cls = Context_specific; number = 7; _ }, c) -> Ok (Ip c)
  | Der.Cons ({ cls = Context_specific; number = 4; _ }, [ dn_v ]) ->
      let* dn = Dn.of_der dn_v in
      Ok (Directory dn)
  | _ -> Error "GeneralName: unsupported choice"

(* --- extnValue payload codecs --- *)

let bc_to_der { ca; path_len } =
  Der.sequence
    ((if ca then [ Der.boolean true ] else [])
    @ match path_len with None -> [] | Some n -> [ Der.integer_of_int n ])

let bc_of_der v =
  let* fields = Der.as_sequence v in
  match fields with
  | [] -> Ok { ca = false; path_len = None }
  | [ b ] -> (
      (* Either just cA, or (dubious but seen) just pathLen. *)
      match Der.as_boolean b with
      | Ok ca -> Ok { ca; path_len = None }
      | Error _ ->
          let* n = Der.as_integer_int b in
          Ok { ca = false; path_len = Some n })
  | [ b; n ] ->
      let* ca = Der.as_boolean b in
      let* path_len = Der.as_integer_int n in
      Ok { ca; path_len = Some path_len }
  | _ -> Error "BasicConstraints: too many fields"

let ku_to_der flags =
  let bits = List.fold_left (fun acc f -> acc lor (1 lsl flag_bit f)) 0 flags in
  (* Render 9 bits big-endian-first into two octets; compute unused count. *)
  let highest = List.fold_left (fun acc f -> Stdlib.max acc (flag_bit f)) (-1) flags in
  let nbits = highest + 1 in
  if nbits <= 0 then Der.bit_string ~unused:0 ""
  else begin
    let nbytes = (nbits + 7) / 8 in
    let unused = (nbytes * 8) - nbits in
    let content =
      String.init nbytes (fun byte_i ->
          let v = ref 0 in
          for bit = 0 to 7 do
            let idx = (byte_i * 8) + bit in
            if idx < nbits && bits land (1 lsl idx) <> 0 then v := !v lor (0x80 lsr bit)
          done;
          Char.chr !v)
    in
    Der.bit_string ~unused content
  end

let ku_of_der v =
  let* unused, content = Der.as_bit_string v in
  let nbits = (String.length content * 8) - unused in
  let has idx =
    idx < nbits
    && Char.code content.[idx / 8] land (0x80 lsr (idx mod 8)) <> 0
  in
  Ok (List.filter (fun f -> has (flag_bit f)) all_flags)

let akid_to_der { akid_key_id; akid_issuer; akid_serial } =
  Der.sequence
    ((match akid_key_id with Some k -> [ Der.context_prim 0 k ] | None -> [])
    @ (match akid_issuer with
      | [] -> []
      | names -> [ Der.Cons ({ cls = Context_specific; constructed = true; number = 1 },
                             List.map general_name_to_der names) ])
    @ match akid_serial with Some s -> [ Der.context_prim 2 s ] | None -> [])

let akid_of_der v =
  let* fields = Der.as_sequence v in
  let init = { akid_key_id = None; akid_issuer = []; akid_serial = None } in
  List.fold_left
    (fun acc field ->
      let* acc = acc in
      match field with
      | Der.Prim ({ cls = Context_specific; number = 0; _ }, c) ->
          Ok { acc with akid_key_id = Some c }
      | Der.Cons ({ cls = Context_specific; number = 1; _ }, names) ->
          let* names = map_result general_name_of_der names in
          Ok { acc with akid_issuer = names }
      | Der.Prim ({ cls = Context_specific; number = 2; _ }, c) ->
          Ok { acc with akid_serial = Some c }
      | _ -> Error "AuthorityKeyIdentifier: unexpected field")
    (Ok init) fields

let aia_to_der { ca_issuers; ocsp } =
  let access method_oid uri =
    Der.sequence [ Der.oid method_oid; Der.context_prim 6 uri ]
  in
  Der.sequence
    (List.map (access Oid.ad_ocsp) ocsp @ List.map (access Oid.ad_ca_issuers) ca_issuers)

let aia_of_der v =
  let* entries = Der.as_sequence v in
  List.fold_left
    (fun acc entry ->
      let* aia = acc in
      let* fields = Der.as_sequence entry in
      match fields with
      | [ m; loc ] -> (
          let* method_oid = Der.as_oid m in
          let* name = general_name_of_der loc in
          match name with
          | Uri uri ->
              if Oid.equal method_oid Oid.ad_ca_issuers then
                Ok { aia with ca_issuers = aia.ca_issuers @ [ uri ] }
              else if Oid.equal method_oid Oid.ad_ocsp then
                Ok { aia with ocsp = aia.ocsp @ [ uri ] }
              else Ok aia
          | _ -> Ok aia)
      | _ -> Error "AccessDescription: expected 2 fields")
    (Ok { ca_issuers = []; ocsp = [] })
    entries

let value_payload = function
  | Basic_constraints bc -> bc_to_der bc
  | Key_usage flags -> ku_to_der flags
  | Ext_key_usage purposes -> Der.sequence (List.map Der.oid purposes)
  | Subject_alt_name names -> Der.sequence (List.map general_name_to_der names)
  | Subject_key_id kid -> Der.octet_string kid
  | Authority_key_id akid -> akid_to_der akid
  | Authority_info_access aia -> aia_to_der aia
  | Unknown _ -> assert false

let to_der { critical; value } =
  let payload =
    match value with
    | Unknown (_, raw) -> raw
    | v -> Der.encode (value_payload v)
  in
  Der.sequence
    ([ Der.oid (oid_of_value value) ]
    @ (if critical then [ Der.boolean true ] else [])
    @ [ Der.octet_string payload ])

let decode_payload oid payload =
  let known decode wrap =
    let* inner = Der.decode payload in
    let* v = decode inner in
    Ok (wrap v)
  in
  if Oid.equal oid Oid.ext_basic_constraints then
    known bc_of_der (fun bc -> Basic_constraints bc)
  else if Oid.equal oid Oid.ext_key_usage then known ku_of_der (fun f -> Key_usage f)
  else if Oid.equal oid Oid.ext_ext_key_usage then
    known
      (fun v ->
        let* oids = Der.as_sequence v in
        map_result Der.as_oid oids)
      (fun os -> Ext_key_usage os)
  else if Oid.equal oid Oid.ext_subject_alt_name then
    known
      (fun v ->
        let* names = Der.as_sequence v in
        map_result general_name_of_der names)
      (fun ns -> Subject_alt_name ns)
  else if Oid.equal oid Oid.ext_subject_key_id then
    known Der.as_octet_string (fun k -> Subject_key_id k)
  else if Oid.equal oid Oid.ext_authority_key_id then
    known akid_of_der (fun a -> Authority_key_id a)
  else if Oid.equal oid Oid.ext_authority_info_access then
    known aia_of_der (fun a -> Authority_info_access a)
  else Ok (Unknown (oid, payload))

let of_der v =
  let* fields = Der.as_sequence v in
  let* oid, critical, payload_v =
    match fields with
    | [ o; p ] ->
        let* oid = Der.as_oid o in
        Ok (oid, false, p)
    | [ o; c; p ] ->
        let* oid = Der.as_oid o in
        let* critical = Der.as_boolean c in
        Ok (oid, critical, p)
    | _ -> Error "Extension: expected 2 or 3 fields"
  in
  let* payload = Der.as_octet_string payload_v in
  let* value = decode_payload oid payload in
  Ok { critical; value }

let pp_general_name ppf = function
  | Dns d -> Format.fprintf ppf "DNS:%s" d
  | Ip ip -> Format.fprintf ppf "IP:%s" ip
  | Uri u -> Format.fprintf ppf "URI:%s" u
  | Directory dn -> Format.fprintf ppf "DirName:%a" Dn.pp dn

let pp ppf { critical; value } =
  let crit = if critical then " critical" else "" in
  match value with
  | Basic_constraints { ca; path_len } ->
      Format.fprintf ppf "BasicConstraints%s: CA:%b%s" crit ca
        (match path_len with None -> "" | Some n -> Printf.sprintf ", pathlen:%d" n)
  | Key_usage flags ->
      Format.fprintf ppf "KeyUsage%s: %s" crit
        (String.concat ", " (List.map key_usage_flag_to_string flags))
  | Ext_key_usage purposes ->
      Format.fprintf ppf "ExtendedKeyUsage%s: %s" crit
        (String.concat ", " (List.map Oid.name purposes))
  | Subject_alt_name names ->
      Format.fprintf ppf "SubjectAltName%s: %a" crit
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_general_name)
        names
  | Subject_key_id kid ->
      Format.fprintf ppf "SubjectKeyIdentifier%s: %s" crit
        (Chaoschain_crypto.Hex.encode kid)
  | Authority_key_id { akid_key_id; _ } ->
      Format.fprintf ppf "AuthorityKeyIdentifier%s: keyid:%s" crit
        (match akid_key_id with
        | Some k -> Chaoschain_crypto.Hex.encode k
        | None -> "<by name/serial>")
  | Authority_info_access { ca_issuers; ocsp } ->
      Format.fprintf ppf "AuthorityInfoAccess%s: caIssuers=[%s] ocsp=[%s]" crit
        (String.concat "; " ca_issuers) (String.concat "; " ocsp)
  | Unknown (oid, raw) ->
      Format.fprintf ppf "Unknown(%s)%s: %d bytes" (Oid.to_string oid) crit
        (String.length raw)
