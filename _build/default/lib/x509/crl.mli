(** Certificate revocation lists.

    The paper treats revocation as part of path *validation* (and notes that
    MbedTLS already consults it during path {i construction}); it is excluded
    from the main measurement but named as the factor its heuristic test
    chains do not cover. This module provides the substrate so the engine can
    model both integration styles: a minimal CRL — issuer, update window,
    revoked serial set, signature by the issuing CA — with the same simulated
    signature scheme certificates use. *)

module Keys = Chaoschain_crypto.Keys
module Prng = Chaoschain_crypto.Prng

type revocation_reason =
  | Unspecified
  | Key_compromise
  | Ca_compromise
  | Superseded
  | Cessation_of_operation

val reason_to_string : revocation_reason -> string

type revoked_entry = {
  serial : string;                  (** the revoked certificate's serial *)
  revoked_at : Vtime.t;
  reason : revocation_reason;
}

type t
(** A signed CRL; immutable. *)

val issue :
  Prng.t -> issuer:Issue.signer -> this_update:Vtime.t -> ?next_update:Vtime.t ->
  revoked_entry list -> t
(** Sign a CRL over the given entries. [next_update] defaults to 30 days
    after [this_update]. *)

val issuer_dn : t -> Dn.t
val this_update : t -> Vtime.t
val next_update : t -> Vtime.t
val entries : t -> revoked_entry list

val is_stale : t -> Vtime.t -> bool
(** [nextUpdate] has passed. *)

val signed_by : t -> Cert.t -> bool
(** The candidate CA's key verifies this CRL's signature. *)

val find_serial : t -> string -> revoked_entry option

type status =
  | Good
  | Revoked of revoked_entry
  | Unknown_status of string  (** no CRL, stale CRL, or bad CRL signature *)

val status_to_string : status -> string

val check : crl:t option -> issuer:Cert.t -> now:Vtime.t -> Cert.t -> status
(** Revocation status of a certificate against its issuer's CRL, applying the
    signature and freshness checks a real client performs. *)
