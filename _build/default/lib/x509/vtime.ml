module Der = Chaoschain_der.Der

type t = { days : int; secs : int }
(* [days] since 1970-01-01 (may be negative), [secs] in [0, 86400). *)

let is_leap y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let month_len y m =
  match m with
  | 1 | 3 | 5 | 7 | 8 | 10 | 12 -> 31
  | 4 | 6 | 9 | 11 -> 30
  | 2 -> if is_leap y then 29 else 28
  | _ -> invalid_arg "Vtime: month out of range"

(* Howard Hinnant's civil <-> days algorithms. *)
let days_from_civil y m d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let doy = (((153 * (if m > 2 then m - 3 else m + 9)) + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe - 719468

let civil_from_days z =
  let z = z + 719468 in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  ((if m <= 2 then y + 1 else y), m, d)

let make ~y ~m ~d ?(hh = 0) ?(mm = 0) ?(ss = 0) () =
  if m < 1 || m > 12 then invalid_arg "Vtime.make: month";
  if d < 1 || d > month_len y m then invalid_arg "Vtime.make: day";
  if hh < 0 || hh > 23 || mm < 0 || mm > 59 || ss < 0 || ss > 59 then
    invalid_arg "Vtime.make: time of day";
  { days = days_from_civil y m d; secs = (hh * 3600) + (mm * 60) + ss }

let ymd t = civil_from_days t.days
let hms t = (t.secs / 3600, t.secs mod 3600 / 60, t.secs mod 60)

let compare a b =
  match Stdlib.compare a.days b.days with 0 -> Stdlib.compare a.secs b.secs | c -> c

let equal a b = compare a b = 0
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b <= 0 then b else a
let add_days t n = { t with days = t.days + n }

let clamp_civil y m d =
  let d = Stdlib.min d (month_len y m) in
  { days = days_from_civil y m d; secs = 0 }

let add_years t n =
  let y, m, d = ymd t in
  { (clamp_civil (y + n) m d) with secs = t.secs }

let add_months t n =
  let y, m, d = ymd t in
  let total = ((y * 12) + (m - 1)) + n in
  let y' = total / 12 and m' = (total mod 12) + 1 in
  { (clamp_civil y' m' d) with secs = t.secs }

let diff_days a b = a.days - b.days

let to_utctime t =
  let y, m, d = ymd t in
  if y < 1950 || y > 2049 then invalid_arg "Vtime.to_utctime: year outside 1950-2049";
  let hh, mm, ss = hms t in
  Printf.sprintf "%02d%02d%02d%02d%02d%02dZ" (y mod 100) m d hh mm ss

let to_generalized t =
  let y, m, d = ymd t in
  let hh, mm, ss = hms t in
  Printf.sprintf "%04d%02d%02d%02d%02d%02dZ" y m d hh mm ss

let parse_digits s off n =
  if off + n > String.length s then Error "time: truncated"
  else begin
    let v = ref 0 in
    let bad = ref false in
    for i = off to off + n - 1 do
      match s.[i] with
      | '0' .. '9' -> v := (!v * 10) + (Char.code s.[i] - Char.code '0')
      | _ -> bad := true
    done;
    if !bad then Error "time: non-digit" else Ok !v
  end

let ( let* ) = Result.bind

let of_fields y m d hh mm ss =
  try Ok (make ~y ~m ~d ~hh ~mm ~ss ())
  with Invalid_argument msg -> Error msg

let of_utctime s =
  if String.length s <> 13 || s.[12] <> 'Z' then Error "UTCTime: expected YYMMDDHHMMSSZ"
  else
    let* yy = parse_digits s 0 2 in
    let* m = parse_digits s 2 2 in
    let* d = parse_digits s 4 2 in
    let* hh = parse_digits s 6 2 in
    let* mm = parse_digits s 8 2 in
    let* ss = parse_digits s 10 2 in
    let y = if yy < 50 then 2000 + yy else 1900 + yy in
    of_fields y m d hh mm ss

let of_generalized s =
  if String.length s <> 15 || s.[14] <> 'Z' then
    Error "GeneralizedTime: expected YYYYMMDDHHMMSSZ"
  else
    let* y = parse_digits s 0 4 in
    let* m = parse_digits s 4 2 in
    let* d = parse_digits s 6 2 in
    let* hh = parse_digits s 8 2 in
    let* mm = parse_digits s 10 2 in
    let* ss = parse_digits s 12 2 in
    of_fields y m d hh mm ss

let to_der_time t =
  let y, _, _ = ymd t in
  if y >= 1950 && y <= 2049 then Der.utc_time (to_utctime t)
  else Der.generalized_time (to_generalized t)

let of_der_time v =
  match v with
  | Der.Prim ({ cls = Universal; number = 23; _ }, c) -> of_utctime c
  | Der.Prim ({ cls = Universal; number = 24; _ }, c) -> of_generalized c
  | _ -> Error "expected UTCTime or GeneralizedTime"

let month_name = [| "Jan"; "Feb"; "Mar"; "Apr"; "May"; "Jun"; "Jul"; "Aug"; "Sep"; "Oct"; "Nov"; "Dec" |]

let pp ppf t =
  let y, m, d = ymd t in
  let hh, mm, ss = hms t in
  Format.fprintf ppf "%s %2d %02d:%02d:%02d %d GMT" month_name.(m - 1) d hh mm ss y

let to_string t = Format.asprintf "%a" pp t

(* Defined last so the polymorphic-looking comparison operators don't shadow
   the integer comparisons used throughout this file. *)
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
