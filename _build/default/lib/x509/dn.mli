(** X.501 distinguished names.

    A DN is a sequence of relative distinguished names (RDNs); each RDN is a
    set of attribute/value pairs (almost always a singleton in Web PKI).
    Equality matters for two of the paper's three issuance criteria, so both
    strict (byte) and loose (caseIgnore, whitespace-folding) comparison are
    provided; the loose form is what RFC 5280 section 7.1 name chaining
    prescribes and what the compliance analyzer uses. *)

module Der = Chaoschain_der.Der
module Oid = Chaoschain_der.Oid

type attr = { typ : Oid.t; value : string }
type rdn = attr list
type t = rdn list

val empty : t

val make :
  ?c:string -> ?st:string -> ?l:string -> ?o:string -> ?ou:string ->
  ?cn:string -> unit -> t
(** Build a DN from the common attribute types, in the conventional
    C, ST, L, O, OU, CN order. Omitted arguments contribute no RDN. *)

val of_attrs : (Oid.t * string) list -> t
(** One single-attribute RDN per pair, in the given order. *)

val common_name : t -> string option
(** Value of the first CN attribute, if any. *)

val organization : t -> string option

val equal_strict : t -> t -> bool
(** Byte-for-byte equality of the attribute values. *)

val equal : t -> t -> bool
(** RFC 5280 name chaining comparison: same RDN structure, attribute values
    compared case-insensitively with internal whitespace runs folded. *)

val compare : t -> t -> int
(** Total order consistent with {!equal_strict}; for use in maps/sets. *)

val is_empty : t -> bool

val to_string : t -> string
(** RFC 4514 flavoured rendering, e.g. ["C=US, O=DigiCert Inc, CN=..."]. *)

val pp : Format.formatter -> t -> unit

val to_der : t -> Der.t
val of_der : Der.t -> (t, string) result
