(** X.509 v3 extensions relevant to chain construction (RFC 5280 section 4.2):
    Basic Constraints, Key Usage, Extended Key Usage, Subject Alternative
    Name, Subject Key Identifier, Authority Key Identifier, and Authority
    Information Access. Other extensions round-trip opaquely. *)

module Der = Chaoschain_der.Der
module Oid = Chaoschain_der.Oid

type key_usage_flag =
  | Digital_signature
  | Content_commitment
  | Key_encipherment
  | Data_encipherment
  | Key_agreement
  | Key_cert_sign  (** the flag chain construction cares about for issuers *)
  | Crl_sign
  | Encipher_only
  | Decipher_only

val key_usage_flag_to_string : key_usage_flag -> string

type general_name =
  | Dns of string
  | Ip of string       (** dotted-quad text, stored as such *)
  | Uri of string
  | Directory of Dn.t

type basic_constraints = { ca : bool; path_len : int option }

type authority_key_id = {
  akid_key_id : string option;          (** 20-byte key identifier *)
  akid_issuer : general_name list;      (** alternative: issuer name ... *)
  akid_serial : string option;          (** ... plus serial *)
}

type authority_info_access = {
  ca_issuers : string list;  (** caIssuers URIs, the AIA-completion source *)
  ocsp : string list;
}

type value =
  | Basic_constraints of basic_constraints
  | Key_usage of key_usage_flag list
  | Ext_key_usage of Oid.t list
  | Subject_alt_name of general_name list
  | Subject_key_id of string
  | Authority_key_id of authority_key_id
  | Authority_info_access of authority_info_access
  | Unknown of Oid.t * string  (** OID + raw extnValue octets *)

type t = { critical : bool; value : value }

val basic_constraints : ?critical:bool -> ca:bool -> ?path_len:int -> unit -> t
val key_usage : ?critical:bool -> key_usage_flag list -> t
val ext_key_usage : Oid.t list -> t
val subject_alt_name : general_name list -> t
val subject_key_id : string -> t
val authority_key_id : string -> t
(** AKID carrying just a keyIdentifier, the dominant real-world form. *)

val authority_key_id_by_name : Dn.t -> string -> t
(** AKID referencing issuer name + serial instead of a key id. *)

val authority_info_access : ?ocsp:string list -> ca_issuers:string list -> unit -> t

val oid_of_value : value -> Oid.t

val find : Oid.t -> t list -> t option
(** First extension with the given OID. *)

val to_der : t -> Der.t
(** The [Extension ::= SEQUENCE { extnID, critical, extnValue }] encoding. *)

val of_der : Der.t -> (t, string) result

val pp : Format.formatter -> t -> unit
