lib/crypto/hex.mli:
