lib/crypto/keys.ml: Format Hex Printf Prng Sha256 String
