lib/crypto/keys.mli: Format Prng
