lib/crypto/prng.mli:
