lib/crypto/prng.ml: Array Bytes Char Int64 List Sha256 String
