(** Simulated public-key cryptography.

    The paper's chain-construction logic never performs bignum arithmetic; it
    only consumes the predicate "does certificate A's public key verify
    certificate B's signature" plus signature-algorithm metadata (OpenSSL
    consults algorithm compatibility when ranking candidate issuers). This
    module provides exactly those semantics with a hash-based stand-in:

    {v sign(priv, msg)        = SHA-256(msg || fingerprint(priv.public))
       verify(pub, msg, sig)  = constant-time-irrelevant recomputation v}

    A signature verifies under a public key iff it was produced by the
    matching private key over the identical message bytes, which is the
    property path building relies on. The substitution is documented in
    DESIGN.md. *)

type algorithm =
  | Rsa_2048
  | Rsa_4096
  | Ecdsa_p256
  | Ecdsa_p384
  | Rsa_1024  (** deprecated strength, used for DEPRECATED_CRYPTO scenarios *)

val algorithm_to_string : algorithm -> string
(** Rendering used in table output, e.g. ["RSA-2048"]. *)

val algorithm_deprecated : algorithm -> bool
(** [true] only for {!Rsa_1024}. *)

val signature_oid_name : algorithm -> string
(** The signature-algorithm identifier a certificate signed by a key of this
    type carries, e.g. ["sha256WithRSAEncryption"]. *)

type public_key = private { alg : algorithm; material : string }
(** Public half; [material] is opaque simulated key material whose SHA-256
    fingerprint identifies the key. *)

type private_key
(** Secret half; kept abstract so signatures can only be minted through
    {!sign}. *)

type signature = { sig_alg : algorithm; sig_bytes : string }
(** A detached signature value. *)

val generate : Prng.t -> algorithm -> private_key
(** Deterministically generate a key pair from the given stream. *)

val import_public : algorithm -> string -> (public_key, string) result
(** Reconstruct a public key from its algorithm and raw material, validating
    the material length; used when decoding certificates from DER. *)

val material_size : algorithm -> int
(** Size in bytes of the simulated key material for each algorithm; the sizes
    are pairwise distinct within an OID family, which lets the DER decoder
    recover the exact algorithm from (OID family, material length). *)

val public_of_private : private_key -> public_key

val fingerprint : public_key -> string
(** 32-byte SHA-256 fingerprint of the public key material. *)

val key_id : public_key -> string
(** 20-byte key identifier (truncated fingerprint), the value carried by SKID
    and referenced by AKID, per RFC 5280 section 4.2.1.2 method (1). *)

val sign : private_key -> string -> signature
(** [sign priv msg] produces a signature over exactly the bytes of [msg]. *)

val verify : public_key -> string -> signature -> bool
(** [verify pub msg s] holds iff [s] was produced by the private key matching
    [pub] over exactly [msg]. *)

val forge_garbage : Prng.t -> algorithm -> signature
(** A syntactically valid signature that verifies under no key; used by test
    chains that must fail the cryptographic criterion. *)

val equal_public : public_key -> public_key -> bool
val pp_public : Format.formatter -> public_key -> unit
