(* SplitMix64 (Steele, Lea, Flood 2014): tiny state, excellent statistical
   quality for simulation purposes, and trivially splittable. *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 g =
  g.state <- Int64.add g.state golden;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let of_label label =
  let d = Sha256.digest label in
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code d.[i]))
  done;
  create !v

let split g = create (next_int64 g)

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let v = Int64.to_int (Int64.logand (next_int64 g) mask) in
  v mod bound

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g =
  let v = Int64.shift_right_logical (next_int64 g) 11 in
  Int64.to_float v /. 9007199254740992.0 (* 2^53 *)

let bool g = Int64.logand (next_int64 g) 1L = 1L
let bernoulli g p = float g < p

let bytes g n =
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set out i (Char.chr (int g 256))
  done;
  Bytes.unsafe_to_string out

let pick g arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int g (Array.length arr))

let pick_list g l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | _ -> List.nth l (int g (List.length l))

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let shuffle_list g l =
  let arr = Array.of_list l in
  shuffle g arr;
  Array.to_list arr
