let hexchars = "0123456789abcdef"

let encode s =
  let n = String.length s in
  let out = Bytes.create (2 * n) in
  for i = 0 to n - 1 do
    let v = Char.code s.[i] in
    Bytes.set out (2 * i) hexchars.[v lsr 4];
    Bytes.set out ((2 * i) + 1) hexchars.[v land 0xF]
  done;
  Bytes.unsafe_to_string out

let nibble c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let decode s =
  let n = String.length s in
  if n mod 2 <> 0 then Error "hex: odd number of digits"
  else begin
    let out = Bytes.create (n / 2) in
    let rec go i =
      if i >= n then Ok (Bytes.unsafe_to_string out)
      else
        match (nibble s.[i], nibble s.[i + 1]) with
        | Some hi, Some lo ->
            Bytes.set out (i / 2) (Char.chr ((hi lsl 4) lor lo));
            go (i + 2)
        | _ -> Error (Printf.sprintf "hex: invalid digit at offset %d" i)
    in
    go 0
  end

let decode_exn s =
  match decode s with Ok v -> v | Error msg -> invalid_arg msg
