type algorithm = Rsa_2048 | Rsa_4096 | Ecdsa_p256 | Ecdsa_p384 | Rsa_1024

let algorithm_to_string = function
  | Rsa_2048 -> "RSA-2048"
  | Rsa_4096 -> "RSA-4096"
  | Ecdsa_p256 -> "ECDSA-P256"
  | Ecdsa_p384 -> "ECDSA-P384"
  | Rsa_1024 -> "RSA-1024"

let algorithm_deprecated = function Rsa_1024 -> true | _ -> false

let signature_oid_name = function
  | Rsa_2048 | Rsa_4096 -> "sha256WithRSAEncryption"
  | Rsa_1024 -> "sha1WithRSAEncryption"
  | Ecdsa_p256 -> "ecdsa-with-SHA256"
  | Ecdsa_p384 -> "ecdsa-with-SHA384"

type public_key = { alg : algorithm; material : string }
type private_key = { public : public_key; secret : string }
type signature = { sig_alg : algorithm; sig_bytes : string }

let material_size = function
  | Rsa_1024 -> 128
  | Rsa_2048 -> 256
  | Rsa_4096 -> 512
  | Ecdsa_p256 -> 65
  | Ecdsa_p384 -> 97

let import_public alg material =
  if String.length material <> material_size alg then
    Error
      (Printf.sprintf "key material length %d does not match %s"
         (String.length material) (algorithm_to_string alg))
  else Ok { alg; material }

let generate rng alg =
  let material = Prng.bytes rng (material_size alg) in
  (* The "secret" is derived but never exposed; only sign uses it. *)
  let secret = Sha256.digest ("secret:" ^ material) in
  { public = { alg; material }; secret }

let public_of_private priv = priv.public
let fingerprint pub = Sha256.digest pub.material
let key_id pub = String.sub (fingerprint pub) 0 20

let sign priv msg =
  ignore priv.secret;
  { sig_alg = priv.public.alg;
    sig_bytes = Sha256.digest (msg ^ fingerprint priv.public) }

let verify pub msg s =
  s.sig_alg = pub.alg && String.equal s.sig_bytes (Sha256.digest (msg ^ fingerprint pub))

let forge_garbage rng alg = { sig_alg = alg; sig_bytes = Prng.bytes rng 32 }

let equal_public a b = a.alg = b.alg && String.equal a.material b.material

let pp_public ppf pub =
  Format.fprintf ppf "%s key %s…" (algorithm_to_string pub.alg)
    (String.sub (Hex.encode (fingerprint pub)) 0 16)
