(** Lowercase hexadecimal encoding of raw byte strings. *)

val encode : string -> string
(** [encode s] renders every byte of [s] as two lowercase hex digits. *)

val decode : string -> (string, string) result
(** Inverse of {!encode}. Accepts upper- and lowercase digits; fails with a
    descriptive message on odd length or non-hex characters. *)

val decode_exn : string -> string
(** Like {!decode} but raises [Invalid_argument] on malformed input. *)
