(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic component of the reproduction (key material, serial
    numbers, population sampling, shuffles used by the capability tests) draws
    from an explicit generator state so that a given seed always yields the
    same synthetic Internet, the same tables and the same benchmark corpus. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator; equal seeds give equal streams. *)

val of_label : string -> t
(** Derive a generator from a human-readable label (hashed with SHA-256), so
    independent subsystems can use disjoint, stable streams. *)

val split : t -> t
(** [split g] draws from [g] to seed a statistically independent child
    generator; used to decorrelate sub-populations. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. Raises [Invalid_argument] if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val bytes : t -> int -> string
(** [bytes g n] is [n] uniformly random bytes. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list
(** Persistent shuffle of a list. *)
