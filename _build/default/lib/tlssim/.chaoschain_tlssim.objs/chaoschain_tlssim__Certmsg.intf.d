lib/tlssim/certmsg.mli: Cert Chaoschain_x509
