lib/tlssim/handshake.mli: Cert Chaoschain_core Chaoschain_x509 Clients Difftest Engine
