lib/tlssim/handshake.ml: Cert Certmsg Chaoschain_core Chaoschain_x509 Clients Difftest Engine List Result String
