lib/tlssim/certmsg.ml: Buffer Cert Chaoschain_x509 Char List Result String
