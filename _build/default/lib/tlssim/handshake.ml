open Chaoschain_x509
open Chaoschain_core

type version = Tls12 | Tls13

type server = {
  server_name : string;
  chain : Cert.t list;
  supports : version list;
}

let server ~name ~chain = { server_name = name; chain; supports = [ Tls12; Tls13 ] }

type user_outcome =
  | Connection_established
  | Connection_refused of string
  | Warning_page of string

let outcome_to_string = function
  | Connection_established -> "connection established"
  | Connection_refused msg -> "connection refused: " ^ msg
  | Warning_page msg -> "warning page: " ^ msg

type transcript = {
  version : version;
  certificate_msg_bytes : int;
  client_outcome : user_outcome;
  engine : Engine.outcome;
}

let cache_for (env : Difftest.env) (client : Clients.t) =
  if client.Clients.uses_os_intermediate_store then env.Difftest.os_store
  else if client.Clients.uses_intermediate_cache then env.Difftest.firefox_cache
  else []

let connect env ~client ?(version = Tls13) srv =
  if not (List.mem version srv.supports) then
    invalid_arg "Handshake.connect: version not supported by server";
  (* Serialize and re-parse the Certificate message: the client consumes the
     wire bytes, not the server's in-memory list. *)
  let wire =
    match version with
    | Tls12 -> Certmsg.encode_tls12 srv.chain
    | Tls13 -> Certmsg.encode_tls13 srv.chain
  in
  let received =
    match version with
    | Tls12 -> Certmsg.decode_tls12 wire
    | Tls13 -> Result.map snd (Certmsg.decode_tls13 wire)
  in
  let certs =
    match received with
    | Ok certs -> certs
    | Error e -> invalid_arg ("Handshake: self-encoded message failed to parse: " ^ e)
  in
  let store = env.Difftest.store_of client.Clients.root_program in
  let ctx =
    Clients.context client ~store ~aia:env.Difftest.aia ~cache:(cache_for env client)
      ~now:env.Difftest.now
  in
  let engine = Engine.run ctx ~host:(Some srv.server_name) certs in
  let client_outcome =
    match engine.Engine.result with
    | Ok _ -> Connection_established
    | Error e -> (
        let msg = Clients.render_error client e in
        match client.Clients.kind with
        | Clients.Library -> Connection_refused msg
        | Clients.Browser -> Warning_page msg)
  in
  { version;
    certificate_msg_bytes = String.length wire;
    client_outcome;
    engine }

let availability_impact env srv =
  List.map
    (fun client -> (client, (connect env ~client srv).client_outcome))
    Clients.all

