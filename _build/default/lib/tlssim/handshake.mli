(** A miniature TLS handshake between a configured server and one of the
    modelled clients, surfacing the availability outcomes the paper
    discusses: libraries abort the connection, browsers interpose a warning
    page, and users may fall back to insecure HTTP. *)

open Chaoschain_x509
open Chaoschain_core

type version = Tls12 | Tls13

type server = {
  server_name : string;            (** SNI hostname served *)
  chain : Cert.t list;             (** the certificate list it will send *)
  supports : version list;
}

val server : name:string -> chain:Cert.t list -> server
(** A server speaking both protocol versions. *)

type user_outcome =
  | Connection_established          (** TLS succeeds *)
  | Connection_refused of string    (** library clients: handshake aborted *)
  | Warning_page of string          (** browser clients: interstitial shown *)

val outcome_to_string : user_outcome -> string

type transcript = {
  version : version;
  certificate_msg_bytes : int;      (** size of the Certificate message *)
  client_outcome : user_outcome;
  engine : Engine.outcome;
}

val connect :
  Difftest.env -> client:Clients.t -> ?version:version -> server -> transcript
(** Run ClientHello → ServerHello → Certificate → client-side chain
    processing. The Certificate message is actually encoded and re-parsed
    through {!Certmsg}, so the client sees exactly the wire bytes. *)

val availability_impact : Difftest.env -> server -> (Clients.t * user_outcome) list
(** The paper's service-availability view: every client's user outcome. *)
