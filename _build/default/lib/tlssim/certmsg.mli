(** The TLS Certificate handshake message wire format (RFC 5246 section
    7.4.2 / RFC 8446 section 4.4.2): a 24-bit-length vector of 24-bit-length
    certificate entries. This is the byte string a scanner actually receives;
    the simulated ZGrab parses served chains out of it. *)

open Chaoschain_x509

val encode_tls12 : Cert.t list -> string
(** certificate_list as TLS 1.2 sends it. *)

val decode_tls12 : string -> (Cert.t list, string) result

val encode_tls13 : ?context:string -> Cert.t list -> string
(** TLS 1.3 adds a certificate_request_context and per-entry (empty here)
    extension blocks. *)

val decode_tls13 : string -> (string * Cert.t list, string) result
(** Returns the request context and the certificate list. *)
