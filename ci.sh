#!/bin/sh
# Local CI: full build, test suite, a parallel-pipeline smoke run, and a
# chaind (serve) smoke run. The smoke runs are also wired to
# `dune build @ci` (see bench/dune and bin/dune).
set -eux

cd "$(dirname "$0")"

dune build
dune runtest
dune exec bench/main.exe -- --scale 0.002 --no-micro --jobs 2

# Perf smoke: cross-check the hand-optimised fast paths (SHA-256, slice DER
# decode, intern cache, base64) against the reference paths; exits non-zero
# on any digest or decode mismatch.
dune exec bench/main.exe -- --smoke

# chaind smoke: two identical scenario checks + a stats probe through the
# framed stdin/stdout protocol; assert the verdict and the cache-hit counters.
out=$(dune exec bin/chaoscheck.exe -- serve --scale 0.002 --jobs 2 \
  < bin/ci_serve_requests.ndjson)
echo "$out" | grep -q '"compliant":false'
echo "$out" | grep -q '"ordered":false'
echo "$out" | grep -q '"hits":1'
echo "$out" | grep -q '"misses":1'
echo "$out" | grep -q '"rejects":0'
