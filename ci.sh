#!/bin/sh
# Local CI: full build, test suite, a parallel-pipeline smoke run, and a
# chaind (serve) smoke run. The smoke runs are also wired to
# `dune build @ci` (see bench/dune and bin/dune).
set -eux

cd "$(dirname "$0")"

dune build
dune runtest
dune exec bench/main.exe -- --scale 0.002 --no-micro --jobs 2

# Perf smoke: cross-check the hand-optimised fast paths (SHA-256, slice DER
# decode, intern cache, base64) against the reference paths; exits non-zero
# on any digest or decode mismatch.
dune exec bench/main.exe -- --smoke

# chaind smoke: two identical scenario checks + a stats probe through the
# framed stdin/stdout protocol; assert the verdict and the cache-hit counters.
out=$(dune exec bin/chaoscheck.exe -- serve --scale 0.002 --jobs 2 \
  < bin/ci_serve_requests.ndjson)
echo "$out" | grep -q '"compliant":false'
echo "$out" | grep -q '"ordered":false'
echo "$out" | grep -q '"hits":1'
echo "$out" | grep -q '"misses":1'
echo "$out" | grep -q '"rejects":0'

# chainstore smoke: scan to a store, replay from it byte-identically (at a
# different parallelism), audit clean, then chop the observation segment
# mid-frame and check audit repairs the crash artifact.
store=$(mktemp -d)
rstore=$(mktemp -d)
trap 'rm -rf "$store" "$rstore"' EXIT
dune exec bin/chaoscheck.exe -- scan --scale 0.002 --jobs 2 \
  --store "$store" > "$store/scan.out"
dune exec bin/chaoscheck.exe -- replay --store "$store" --jobs 3 \
  > "$store/replay.out"
cmp "$store/scan.out" "$store/replay.out"
dune exec bin/chaoscheck.exe -- audit --store "$store" | grep -q '^audit ok'
obs="$store/obs.seg"
size=$(wc -c < "$obs")
dd if=/dev/null of="$obs" bs=1 seek=$((size - 5)) 2>/dev/null
dune exec bin/chaoscheck.exe -- audit --store "$store" --dry-run \
  | grep -q 'truncated tail'
dune exec bin/chaoscheck.exe -- audit --store "$store" | grep -q '^store repaired'
dune exec bin/chaoscheck.exe -- audit --store "$store" | grep -q '^audit ok'
dune exec bin/chaoscheck.exe -- replay --store "$store" > /dev/null

# warm-store smoke: a warmed chaind must serve byte-identical check replies,
# with the warm fill showing up as cache hits.
dune exec bin/chaoscheck.exe -- serve --scale 0.002 --jobs 2 \
  --warm-store "$store" < bin/ci_serve_requests.ndjson > "$store/warm.out"
head -2 "$store/warm.out" > "$store/warm2.out"
printf '%s\n' "$out" | head -2 | cmp - "$store/warm2.out"
grep -q '"hits":2' "$store/warm.out"
grep -q '"warmed":' "$store/warm.out"

# dual-encoding smoke: the same chain delivered as a raw TLS Certificate
# message under BOTH wire framings must produce byte-identical verdict
# replies (one miss, one shared-cache hit), and `chaoscheck classify` must
# report full 1.2/1.3 decode agreement over the corpus.
dune exec bin/chaoscheck.exe -- scenario reversed 2>/dev/null > "$store/chain.pem"
b12=$(dune exec bin/chaoscheck.exe -- certmsg "$store/chain.pem" --tls-format 1.2)
b13=$(dune exec bin/chaoscheck.exe -- certmsg "$store/chain.pem" --tls-format 1.3)
{
  printf '{"op":"check","certmsg":"%s","domain":"dual.example","format":"1.2"}\n' "$b12"
  printf '{"op":"check","certmsg":"%s","domain":"dual.example"}\n' "$b13"
  printf '{"op":"stats"}\n'
} > "$store/dual.ndjson"
dune exec bin/chaoscheck.exe -- serve --scale 0.002 --jobs 2 \
  < "$store/dual.ndjson" > "$store/dual.out"
sed -n 1p "$store/dual.out" > "$store/dual1.out"
sed -n 2p "$store/dual.out" | cmp - "$store/dual1.out"
sed -n 3p "$store/dual.out" | grep -q '"hits":1'
sed -n 3p "$store/dual.out" | grep -q '"misses":1'
dune exec bin/chaoscheck.exe -- classify --store "$store" > "$store/classify.out"
grep -q 'TLS 1.2/1.3 decode agreement' "$store/classify.out"
grep -q '(100.0%)' "$store/classify.out"

# report smoke: --format json must be byte-identical across parallelism and
# across scan vs replay; jq can parse it; --check-paper is green on the seed
# population and red (naming the deviating cell) under --inject-deviation;
# `chaoscheck diff` agrees a corpus with itself and flags a divergent one.
dune exec bin/chaoscheck.exe -- scan --scale 0.002 --jobs 1 --format json \
  --store "$rstore" > "$rstore/scan.json"
dune exec bin/chaoscheck.exe -- replay --store "$rstore" --jobs 3 --format json \
  > "$rstore/replay.json"
cmp "$rstore/scan.json" "$rstore/replay.json"
jq -e '.[0].id == "dataset"' "$rstore/scan.json" > /dev/null
jq -e '[.[].blocks[] | select(.kind == "table")] | length == 3' \
  "$rstore/scan.json" > /dev/null
dune exec bin/chaoscheck.exe -- scan --scale 0.002 --jobs 2 --check-paper \
  > /dev/null
if dune exec bin/chaoscheck.exe -- scan --scale 0.002 --jobs 2 --check-paper \
    --inject-deviation > /dev/null 2> "$rstore/inject.err"; then
  echo "inject-deviation unexpectedly passed --check-paper" >&2
  exit 1
fi
grep -q 'check-paper: dataset/TLS 1.2 vs 1.3 identical chains' "$rstore/inject.err"
dune exec bin/chaoscheck.exe -- diff "$rstore" "$rstore" | grep -q 'corpora agree'
# $store lost one observation to the audit-repair test above, so the two
# corpora must diff (non-zero exit, dataset cells named).
if dune exec bin/chaoscheck.exe -- diff "$rstore" "$store" > "$rstore/diff.out"; then
  echo "diff of divergent corpora unexpectedly reported agreement" >&2
  exit 1
fi
grep -q '^dataset/' "$rstore/diff.out"

# netd smoke: chaind on a loopback Unix socket via `serve --listen`, loaded
# by 8 concurrent loadgen connections; replies must be byte-identical to the
# serial stdio path, SIGTERM must drain gracefully (exit 0 with every reply
# delivered), and loadgen's report must be valid report-IR JSON carrying the
# tail quantiles.
nd=$(mktemp -d)
trap 'rm -rf "$store" "$rstore" "$nd"' EXIT
chaoscheck=./_build/default/bin/chaoscheck.exe
{
  printf '{"op":"check","scenario":"reversed"}\n'
  printf '{"op":"check","scenario":"incomplete"}\n'
} > "$nd/frames.ndjson"
"$chaoscheck" serve --scale 0.002 --jobs 2 \
  --listen "unix:$nd/chaind.sock" 2> "$nd/serve.err" &
srv=$!
i=0
while [ $i -lt 100 ]; do
  [ -S "$nd/chaind.sock" ] && break
  sleep 0.1
  i=$((i + 1))
done
[ -S "$nd/chaind.sock" ]
"$chaoscheck" loadgen --connect "unix:$nd/chaind.sock" \
  --frames "$nd/frames.ndjson" --rate 400 --requests 64 --conns 8 \
  --replies "$nd/replies.out" --out "$nd/bench.json" > "$nd/loadgen.out"
kill -TERM "$srv"
wait "$srv"
[ "$(wc -l < "$nd/replies.out")" -eq 64 ]
grep -q 'netd: 8 connections accepted, 64 frames' "$nd/serve.err"
i=0
while [ $i -lt 64 ]; do
  sed -n "$(((i % 2) + 1))p" "$nd/frames.ndjson"
  i=$((i + 1))
done > "$nd/serial.in"
"$chaoscheck" serve --scale 0.002 --jobs 2 --queue 128 \
  < "$nd/serial.in" > "$nd/serial.out"
cmp "$nd/serial.out" "$nd/replies.out"
jq -e '.id == "loadgen"' "$nd/bench.json" > /dev/null
jq -e '[.blocks[0].rows[]?.cells[]?.text?]
       | contains(["latency p50 (ms)", "latency p99 (ms)",
                   "latency p999 (ms)"])' "$nd/bench.json" > /dev/null

# sharded netd smoke: the same service split across 2 shard event loops,
# loaded by 256 ramped connections (32x the single-loop smoke above). Every
# reply must be delivered through the SIGTERM drain with 0 dropped, 0 connect
# errors and 0 accept failures, and the reply stream must be byte-identical
# to a --shards 1 run and to the serial stdio path. The select run always
# executes; the epoll run repeats it whenever `chaoscheck pollers` says the
# platform has the backend.
"$chaoscheck" pollers > "$nd/pollers.out"
grep -qx select "$nd/pollers.out"
run_sharded() {
  # $1 = poller backend, $2 = shard count, $3 = output tag
  "$chaoscheck" serve --scale 0.002 --jobs 2 --queue 256 \
    --poller "$1" --shards "$2" --listen "unix:$nd/$3.sock" \
    2> "$nd/$3.err" &
  srv=$!
  i=0
  while [ $i -lt 100 ]; do
    [ -S "$nd/$3.sock" ] && break
    sleep 0.1
    i=$((i + 1))
  done
  [ -S "$nd/$3.sock" ]
  # ramp 0.1s < conns/rate, so every connection dials while requests are
  # still being scheduled and request i lands on connection (i mod 256):
  # all 256 connections carry traffic
  "$chaoscheck" loadgen --connect "unix:$nd/$3.sock" \
    --frames "$nd/frames.ndjson" --poller "$1" --ramp 0.1 \
    --rate 2000 --requests 512 --conns 256 \
    --replies "$nd/$3.replies" --out "$nd/$3.json" > "$nd/$3.loadgen"
  kill -TERM "$srv"
  wait "$srv"
  [ "$(wc -l < "$nd/$3.replies")" -eq 512 ]
  grep -q 'netd: 256 connections accepted, 512 frames' "$nd/$3.err"
  grep -q ', 0 accept failures' "$nd/$3.err"
  jq -e '[.blocks[0].rows[] | select(.cells[0].text == "dropped")
          | .cells[1].n] == [0]' "$nd/$3.json" > /dev/null
  jq -e '[.blocks[0].rows[] | select(.cells[0].text == "connect errors")
          | .cells[1].n] == [0]' "$nd/$3.json" > /dev/null
}
run_sharded select 2 shard2
run_sharded select 1 shard1
i=0
while [ $i -lt 512 ]; do
  sed -n "$(((i % 2) + 1))p" "$nd/frames.ndjson"
  i=$((i + 1))
done > "$nd/serial512.in"
"$chaoscheck" serve --scale 0.002 --jobs 2 --queue 512 \
  < "$nd/serial512.in" > "$nd/serial512.out"
cmp "$nd/serial512.out" "$nd/shard2.replies"
cmp "$nd/serial512.out" "$nd/shard1.replies"
if grep -qx epoll "$nd/pollers.out"; then
  run_sharded epoll 2 epoll2
  cmp "$nd/serial512.out" "$nd/epoll2.replies"
fi
# TCP shards take the SO_REUSEPORT listener-per-shard path (Unix sockets
# above take the round-robin dispatcher); same byte-identity contract.
port=$((20000 + $$ % 10000))
"$chaoscheck" serve --scale 0.002 --jobs 2 --queue 256 \
  --poller select --shards 2 --listen "tcp:127.0.0.1:$port" \
  2> "$nd/tcp.err" &
srv=$!
i=0
while [ $i -lt 100 ]; do
  grep -q 'chaind: listening' "$nd/tcp.err" && break
  sleep 0.1
  i=$((i + 1))
done
grep -q 'chaind: listening' "$nd/tcp.err"
sleep 0.3
"$chaoscheck" loadgen --connect "tcp:127.0.0.1:$port" \
  --frames "$nd/frames.ndjson" --rate 400 --requests 64 --conns 8 \
  --replies "$nd/tcp.replies" > /dev/null
kill -TERM "$srv"
wait "$srv"
grep -q 'netd: 8 connections accepted, 64 frames' "$nd/tcp.err"
head -64 "$nd/serial512.out" | cmp - "$nd/tcp.replies"

# chainstore-at-scale smoke: a synthetic 100k-record store must audit
# repair-free in bounded wall time with the Domain pool, serve random
# access byte-identical to the sequential reference walk, prove inclusion
# against the authenticated ROOT, and survive losing a derived sidecar
# (audit rebuilds it from the frames). Replay must be byte-identical with
# and without the offset indexes.
big=$(mktemp -d)
trap 'rm -rf "$store" "$rstore" "$nd" "$big"' EXIT
"$chaoscheck" mkstore --store "$big/s" --records 100000 --jobs 2 \
  | grep -q 'merkle root'
t0=$(date +%s)
"$chaoscheck" audit --store "$big/s" --jobs 2 > "$big/audit.out"
t1=$(date +%s)
grep -q '^audit ok' "$big/audit.out"
if grep -q '^store repaired' "$big/audit.out"; then
  echo "fresh synthetic store needed repairs" >&2
  exit 1
fi
# generous bound for a loaded 1-core runner; the target is seconds, not minutes
[ $((t1 - t0)) -le 60 ]
"$chaoscheck" get --store "$big/s" --seg obs 54321 > "$big/idx.rec"
"$chaoscheck" get --store "$big/s" --seg obs 54321 --seq > "$big/seq.rec"
cmp "$big/idx.rec" "$big/seq.rec"
"$chaoscheck" proof --store "$big/s" 99999 | grep -q '^proof ok'
"$chaoscheck" replay --store "$store" --jobs 2 > "$big/with.out"
"$chaoscheck" replay --store "$store" --jobs 2 --no-index > "$big/without.out"
cmp "$big/with.out" "$big/without.out"
rm "$big/s/obs.idx"
"$chaoscheck" audit --store "$big/s" --jobs 2 > "$big/audit2.out"
grep -q 'obs.idx: offset index rebuilt' "$big/audit2.out"
grep -q '^audit ok' "$big/audit2.out"
"$chaoscheck" proof --store "$big/s" 0 | grep -q '^proof ok'

# bench JSON: the micro section must carry the store workloads and the
# committed BENCH_PR8.json protocol snapshot must parse with the same shape.
dune exec bench/main.exe -- --micro-only --filter 'store/merkle-proof(1024)' \
  --json "$big/bench.json" > /dev/null
jq -e '.micro | length >= 1' "$big/bench.json" > /dev/null
jq -e '.micro[] | select(.name == "store/merkle-proof(1024)")' \
  "$big/bench.json" > /dev/null
jq -e '.store[] | select(.name == "store/merkle-proof(1024)")
       | .ns_per_run > 0' BENCH_PR8.json > /dev/null
jq -e '.scaling[] | select(.name == "store/merkle-proof(1048576)")
       | .ns_per_run > 0' BENCH_PR8.json > /dev/null
jq -e '.wall[] | select(.name == "store/audit(100k)")
       | .seconds > 0' BENCH_PR8.json > /dev/null

# derfuzz smoke: a fixed-seed differential campaign over the lab certificate
# corpus must pass the two-decoder agreement precondition on every unmutated
# certificate, classify every mutant with zero divergences (no split, no
# mismatch, no crash from either decoder), and produce byte-identical JSON
# reports at --jobs 1 and --jobs 3. The committed golden seed corpus must
# regenerate from the same seed.
dune exec bin/chaoscheck.exe -- derfuzz --iters 400 --seed 2026 --jobs 1 \
  --format json --out "$big/derfuzz1.json" > /dev/null
dune exec bin/chaoscheck.exe -- derfuzz --iters 400 --seed 2026 --jobs 3 \
  --format json --out "$big/derfuzz3.json" --seeds-out "$big/der_fuzz.seeds" \
  > /dev/null
cmp "$big/derfuzz1.json" "$big/derfuzz3.json"
cmp test/golden/der_fuzz.seeds "$big/der_fuzz.seeds"
jq -e '.id == "derfuzz"' "$big/derfuzz1.json" > /dev/null
jq -e '[.blocks[1].rows[]
        | select(.cells[0].text | test("split|mismatch|crash"))
        | .cells[1].n] | add == 0' "$big/derfuzz1.json" > /dev/null
jq -e '[.blocks[1].rows[] | .cells[1].n] | add == 400' \
  "$big/derfuzz1.json" > /dev/null

# bench JSON: the committed BENCH_PR9.json snapshot must carry the two-decoder
# and campaign workloads with positive timings.
jq -e '.der[] | select(.name == "der2/decode-certificate")
       | .ns_per_run > 0' BENCH_PR9.json > /dev/null
jq -e '.derfuzz[] | select(.name == "derfuzz/campaign(32)")
       | .ns_per_run > 0' BENCH_PR9.json > /dev/null

# bench JSON: the live micro section must carry both poll-wait workloads
# this platform offers, and the committed BENCH_PR10.json snapshot must
# carry both backends plus drop-free shard-scaling loadgen runs at >= 4x
# the PR 7 smoke's 8 connections.
dune exec bench/main.exe -- --micro-only --filter 'net/*' \
  --json "$big/netbench.json" > /dev/null
jq -e '.micro[] | select(.name == "net/poll-wait(select,64fd)")
       | .ns_per_run > 0' "$big/netbench.json" > /dev/null
if grep -qx epoll "$nd/pollers.out"; then
  jq -e '.micro[] | select(.name == "net/poll-wait(epoll,64fd)")
         | .ns_per_run > 0' "$big/netbench.json" > /dev/null
fi
jq -e '.poller[] | select(.name == "net/poll-wait(select,64fd)")
       | .ns_per_run > 0' BENCH_PR10.json > /dev/null
jq -e '.poller[] | select(.name == "net/poll-wait(epoll,64fd)")
       | .ns_per_run > 0' BENCH_PR10.json > /dev/null
jq -e '[.loadgen[] | .dropped, .connect_errors] | add == 0' \
  BENCH_PR10.json > /dev/null
jq -e '[.loadgen[] | .connections] | min >= 32' BENCH_PR10.json > /dev/null
jq -e '[.loadgen[] | .shards] | (contains([1]) and contains([2]))' \
  BENCH_PR10.json > /dev/null

# EXPERIMENTS.md is generated (doc/EXPERIMENTS.head.md + Report.to_markdown);
# regenerate and fail if the committed copy is stale.
./gen_experiments.sh "$rstore/EXPERIMENTS.md"
cmp EXPERIMENTS.md "$rstore/EXPERIMENTS.md"
