#!/bin/sh
# Local CI: full build, test suite, and a parallel-pipeline smoke run.
# The smoke run is also wired to `dune build @ci` (see bench/dune).
set -eux

cd "$(dirname "$0")"

dune build
dune runtest
dune exec bench/main.exe -- --scale 0.002 --no-micro --jobs 2
