(* chaoscheck — command-line front end of the reproduction.

   Subcommands:
     scenario  — write the served PEM chain of a named deployment scenario
     analyze   — server-side structural compliance report over a PEM chain
     difftest  — validate a PEM chain in all eight client models
     matrix    — the Table 9 capability matrix
     scan      — run the measurement scan, optionally persisting a corpus
     replay    — re-run the compliance tables from a persisted corpus
     classify  — parsifal-style chain classification over a persisted corpus
     diff      — per-cell comparison of two persisted corpora
     audit     — verify (and repair) a corpus store's integrity
     get       — random-access one record payload via the offset index
     proof     — O(log n) Merkle inclusion proof from the persisted layers
     mkstore   — synthetic N-record store (the scale harness for CI/bench)
     compact   — drop unreferenced certificates from the dedup segment
     certmsg   — encode a PEM chain as a raw TLS Certificate message
     derfuzz   — differential byte-level DER fuzzing (lib/der vs lib/der2)
     serve     — chaind: the online chain-compliance query service
                 (stdio, or many connections via --listen / netd)
     loadgen   — open-loop load generator + latency report for chaind
     reproduce — regenerate paper tables/figures (same engine as bench) *)

open Cmdliner
open Chaoschain_core
open Chaoschain_measurement
module Pem = Chaoschain_deployment.Pem
module Base64 = Chaoschain_deployment.Base64
module Certmsg = Chaoschain_tlssim.Certmsg
module Service = Chaoschain_service
module Report = Chaoschain_report.Report
module Netloop = Chaoschain_net.Netloop
module Loadgen = Chaoschain_net.Loadgen
module Poller = Chaoschain_net.Poller

(* The lab population: scenario/analyze/difftest/serve operate inside the
   same simulated universe so certificates parse and verify consistently.
   [--scale] selects its size (default 0.002 keeps the CLI snappy). *)
let default_lab_scale = 0.002

let scale_arg =
  let doc =
    "Lab population scale in (0, 1] (1.0 = the paper's full Tranco Top-1M \
     universe). All chain-consuming commands run inside this shared \
     simulated universe."
  in
  Arg.(value & opt float default_lab_scale & info [ "scale" ] ~doc)

(* Every command validates the scale before generating; [with_lab] is the
   single entry point so the validation message is uniform. *)
let with_lab scale f =
  if not (scale > 0.0 && scale <= 1.0) then
    `Error (true, Printf.sprintf "--scale must be in (0, 1] (got %g)" scale)
  else f (Population.generate ~scale ())

let scenario_names =
  List.filter_map
    (fun (s, n) ->
      if n > 0 then Some (Calibration.scenario_to_string s, s) else None)
    Calibration.ledger

let substring_match needle (name, _) =
  let lower = String.lowercase_ascii needle in
  let n = String.lowercase_ascii name in
  let ln = String.length lower and nn = String.length n in
  let rec contains i =
    i + ln <= nn && (String.sub n i ln = lower || contains (i + 1))
  in
  contains 0

let find_record pop scenario =
  Array.to_list pop.Population.domains
  |> List.find_opt (fun r -> r.Population.scenario = scenario)

(* --- scenario --- *)

let scenario_cmd =
  let name_arg =
    let doc = "Scenario name (substring match); try 'reversed', 'duplicate', \
               'incomplete', 'cross'. Use --list for all names." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SCENARIO" ~doc)
  in
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List all scenario names.")
  in
  let run list_them name scale =
    if list_them then begin
      List.iter (fun (n, _) -> print_endline n) scenario_names;
      `Ok ()
    end
    else
      match name with
      | None -> `Error (true, "scenario name required (or --list)")
      | Some needle -> (
          match List.find_opt (substring_match needle) scenario_names with
          | None -> `Error (false, "no scenario matches " ^ needle)
          | Some (label, scenario) ->
              with_lab scale (fun pop ->
                  match find_record pop scenario with
                  | None ->
                      `Error (false, "scenario not present in lab population")
                  | Some r ->
                      Printf.eprintf "# %s — domain %s\n" label
                        r.Population.domain;
                      print_string (Pem.encode_certs r.Population.chain);
                      `Ok ()))
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Emit the PEM chain a scenario's server serves")
    Term.(ret (const run $ list_arg $ name_arg $ scale_arg))

(* --- shared PEM input --- *)

let chain_arg =
  let doc = "PEM file holding the served certificate list ('-' for stdin)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CHAIN.pem" ~doc)

let domain_arg =
  let doc = "Domain name the chain was served for." in
  Arg.(value & opt string "example.com" & info [ "domain"; "d" ] ~doc)

let no_intern_arg =
  let doc =
    "Disable the process-wide certificate intern cache (every decode parses \
     from scratch). Results are identical either way; the flag exists for \
     A/B debugging and timing."
  in
  Arg.(value & flag & info [ "no-intern" ] ~doc)

let apply_intern no_intern =
  if no_intern then Chaoschain_pki.Intern.set_enabled false

let read_chain path =
  let text =
    if path = "-" then In_channel.input_all stdin
    else In_channel.with_open_text path In_channel.input_all
  in
  Pem.decode_certs text

(* --- shared TLS wire-format choice --- *)

let tls_format_conv =
  let parse s =
    match Certmsg.format_of_string s with
    | Some f -> Ok f
    | None ->
        Error
          (`Msg (Printf.sprintf "unknown TLS format %S (want 1.2 or 1.3)" s))
  in
  let print ppf f = Format.pp_print_string ppf (Certmsg.format_to_string f) in
  Arg.conv (parse, print)

let tls_format_arg =
  Arg.(value & opt tls_format_conv Certmsg.Tls12
       & info [ "tls-format" ] ~docv:"VERSION"
           ~doc:"Certificate-message wire framing: $(b,1.2) (RFC 5246 bare \
                 certificate_list) or $(b,1.3) (RFC 8446 per-entry framing \
                 with extension blocks).")

let tls_format_opt_arg =
  Arg.(value & opt (some tls_format_conv) None
       & info [ "tls-format" ] ~docv:"VERSION"
           ~doc:"Framing assumed for \"certmsg\" checks that do not declare \
                 one: $(b,1.2) or $(b,1.3). Omitted, the framing is \
                 auto-detected per request. Verdicts are byte-identical \
                 either way.")

(* --- analyze --- *)

let analyze_format_arg =
  let fmt = Arg.enum [ ("text", `Text); ("json", `Json); ("md", `Md) ] in
  Arg.(value & opt fmt `Text
       & info [ "format" ] ~docv:"FORMAT"
           ~doc:"Output renderer: $(b,text), $(b,json) or $(b,md).")

let analyze_cmd =
  let run path domain scale fmt no_intern =
    apply_intern no_intern;
    match read_chain path with
    | Error e -> `Error (false, e)
    | Ok [] -> `Error (false, "no certificates in input")
    | Ok certs ->
        with_lab scale (fun pop ->
            let u = pop.Population.universe in
            let report =
              Compliance.analyze
                ~store:(Chaoschain_pki.Universe.union_store u)
                ~aia:(Chaoschain_pki.Universe.aia u) ~domain certs
            in
            (match fmt with
            | `Text -> Format.printf "%a@." Compliance.pp_report report
            | `Json ->
                print_endline
                  (Report.Json.pretty
                     (Report.to_json (Compliance.report_ir report)))
            | `Md ->
                print_string
                  (Report.to_markdown (Compliance.report_ir report)));
            `Ok ())
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Server-side structural compliance report")
    Term.(ret (const run $ chain_arg $ domain_arg $ scale_arg
               $ analyze_format_arg $ no_intern_arg))

(* --- difftest --- *)

let difftest_cmd =
  let run path domain scale no_intern =
    apply_intern no_intern;
    match read_chain path with
    | Error e -> `Error (false, e)
    | Ok certs ->
        with_lab scale (fun pop ->
        let env = Population.env pop in
        let case = Difftest.run_case env ~domain certs in
        List.iter
          (fun r ->
            Printf.printf "%-14s %s\n" r.Difftest.client.Clients.name
              r.Difftest.message)
          case.Difftest.results;
        (match Difftest.classify case with
        | [] -> print_endline "all clients agree"
        | causes ->
            List.iter
              (fun c -> print_endline ("cause: " ^ Difftest.cause_to_string c))
              causes);
        `Ok ())
  in
  Cmd.v
    (Cmd.info "difftest" ~doc:"Validate a chain in all eight client models")
    Term.(ret (const run $ chain_arg $ domain_arg $ scale_arg $ no_intern_arg))

(* --- matrix --- *)

let matrix_cmd =
  let run () =
    print_endline (Report.to_text (Experiments.table9 ()));
    `Ok ()
  in
  Cmd.v
    (Cmd.info "matrix" ~doc:"Client capability matrix (Table 9)")
    Term.(ret (const run $ const ()))

(* --- recommend --- *)

let recommend_cmd =
  let run path domain scale no_intern =
    apply_intern no_intern;
    match read_chain path with
    | Error e -> `Error (false, e)
    | Ok certs ->
        with_lab scale (fun pop ->
        let u = pop.Population.universe in
        let report =
          Compliance.analyze
            ~store:(Chaoschain_pki.Universe.union_store u)
            ~aia:(Chaoschain_pki.Universe.aia u) ~domain certs
        in
        (match Recommend.server_advice report with
        | [] -> print_endline "deployment is compliant; nothing to recommend"
        | advice ->
            List.iter
              (fun a ->
                Printf.printf "[%s] (%s) %s\n"
                  (match a.Recommend.severity with `Must -> "MUST" | `Should -> "SHOULD")
                  (Recommend.audience_to_string a.Recommend.audience)
                  a.Recommend.text)
              advice;
            (match Recommend.corrected_chain report with
            | Some fixed ->
                Printf.eprintf "# corrected chain follows\n";
                print_string (Pem.encode_certs fixed)
            | None -> print_endline "(no self-contained correction possible)"));
        `Ok ())
  in
  Cmd.v
    (Cmd.info "recommend"
       ~doc:"Section 6 remediation advice (and a corrected chain if derivable)")
    Term.(ret (const run $ chain_arg $ domain_arg $ scale_arg $ no_intern_arg))

(* --- fuzz --- *)

let fuzz_cmd =
  let iterations_arg =
    Arg.(value & opt int 500 & info [ "iterations"; "n" ] ~doc:"Fuzzing iterations.")
  in
  let seed_arg =
    Arg.(value & opt int 4242 & info [ "seed" ] ~doc:"PRNG seed.")
  in
  let run iterations seed scale no_intern =
    apply_intern no_intern;
    with_lab scale (fun pop ->
    let env = Population.env pop in
    let seeds =
      Array.to_list pop.Population.domains
      |> List.filteri (fun i _ -> i mod 17 = 0)
      |> List.map (fun r -> (r.Population.domain, r.Population.chain))
    in
    let rng = Chaoschain_crypto.Prng.create (Int64.of_int seed) in
    let report = Fuzzer.run ~env ~rng ~iterations seeds in
    Printf.printf "%d iterations, %d divergences, %d crashes\n" report.Fuzzer.iterations
      (List.length report.Fuzzer.divergences)
      (List.length report.Fuzzer.crashes);
    List.iteri
      (fun i d ->
        if i < 10 then Format.printf "%a@." Fuzzer.pp_divergence d)
      report.Fuzzer.divergences;
    if report.Fuzzer.crashes <> [] then begin
      List.iter
        (fun (ms, e) ->
          Printf.printf "CRASH [%s]: %s\n"
            (String.concat "; " (List.map Fuzzer.mutation_to_string ms))
            e)
        report.Fuzzer.crashes;
      `Error (false, "fuzzer found crashes")
    end
    else `Ok ())
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Frankencert-style structural fuzzing of the eight client models \
             (chain-level mutations over parsed certificates; for byte-level \
             DER mutations through the two decoders, see $(b,derfuzz))")
    Term.(ret (const run $ iterations_arg $ seed_arg $ scale_arg $ no_intern_arg))

(* --- scan / replay / audit (chainstore) --- *)

let jobs_pipeline_arg =
  Arg.(value & opt int (Pipeline.default_jobs ())
       & info [ "jobs"; "j" ]
           ~doc:"Domain-pool size for the measurement pipeline (1 = purely \
                 sequential; default: all cores). Output is identical for \
                 every value.")

(* Store-level operations (audit, compact) inject the Domain pool as a
   [Par.t] runner; jobs <= 1 short-circuits to the sequential runner
   without spawning a pool. Results are identical for every value. *)
let with_store_par jobs f =
  if jobs <= 1 then f Chaoschain_store.Par.seq
  else begin
    let pool = Pipeline.Pool.create ~jobs in
    Fun.protect
      ~finally:(fun () -> Pipeline.Pool.shutdown pool)
      (fun () -> f (Pipeline.Pool.run pool))
  end

let no_index_arg =
  Arg.(value & flag
       & info [ "no-index" ]
           ~doc:"Ignore the per-segment offset indexes and decode every \
                 segment sequentially (the reference path the indexed path \
                 is byte-identical to).")

(* Experiment results are the typed report IR; --format selects the
   renderer. Text keeps the historical byte-exact framing (body, blank
   line). JSON prints one deterministic document — stable key order, fixed
   float formatting — so scan and replay agree byte-for-byte at any
   --jobs. *)
let format_arg =
  let fmt = Arg.enum [ ("text", `Text); ("json", `Json); ("md", `Md) ] in
  Arg.(value & opt fmt `Text
       & info [ "format" ] ~docv:"FORMAT"
           ~doc:"Output renderer: $(b,text) (the classic ASCII tables), \
                 $(b,json) (deterministic machine-readable cells) or $(b,md) \
                 (Markdown, what EXPERIMENTS.md embeds).")

let print_results fmt results =
  match fmt with
  | `Text ->
      List.iter
        (fun r ->
          print_endline (Report.to_text r);
          print_newline ())
        results
  | `Md -> List.iter (fun r -> print_string (Report.to_markdown r)) results
  | `Json ->
      print_endline
        (Report.Json.pretty
           (Report.Json.List (List.map Report.to_json results)))

let check_paper_arg =
  Arg.(value & flag
       & info [ "check-paper" ]
           ~doc:"After printing, compare every tolerance-carrying cell \
                 against the paper's reported value and exit non-zero if any \
                 falls outside its tolerance.")

let inject_deviation_arg =
  Arg.(value & flag
       & info [ "inject-deviation" ]
           ~doc:"Perturb one checked cell far outside its tolerance before \
                 rendering (CI hook: proves --check-paper really fails on a \
                 deviation).")

let run_paper_check results =
  match Report.check_paper results with
  | [] ->
      Printf.eprintf "check-paper: %d checked cell(s) within tolerance\n"
        (Report.checked_cell_count results);
      `Ok ()
  | devs ->
      List.iter
        (fun d ->
          Printf.eprintf "check-paper: %s: expected %s, measured %s\n"
            d.Report.dev_path d.Report.dev_expected d.Report.dev_actual)
        devs;
      `Error
        ( false,
          Printf.sprintf "%d cell(s) outside paper tolerance"
            (List.length devs) )

(* --- derfuzz --- *)

(* Byte-level differential DER fuzzing: mutate corpus certificates and
   decode each mutant through both lib/der and lib/der2 (see lib/fuzz).
   Distinct from [fuzz], which mutates parsed chain structure and compares
   the eight client verdict models. *)
let derfuzz_cmd =
  let module Derfuzz = Chaoschain_fuzz.Derfuzz in
  let module Cert = Chaoschain_x509.Cert in
  let iters_arg =
    Arg.(value & opt int 2000
         & info [ "iters"; "n" ] ~doc:"Number of mutants to classify.")
  in
  let seed_arg =
    Arg.(value & opt int 4242
         & info [ "seed" ]
             ~doc:"Campaign PRNG seed. The same seed over the same corpus \
                   yields a byte-identical report at any --jobs.")
  in
  let max_mutations_arg =
    Arg.(value & opt int 3
         & info [ "max-mutations" ]
             ~doc:"Upper bound on stacked mutations per mutant (each mutant \
                   applies 1..N).")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Also write the report as report-IR JSON to $(docv).")
  in
  let seeds_out_arg =
    Arg.(value & opt (some string) None
         & info [ "seeds-out" ] ~docv:"FILE"
             ~doc:"Write exemplar mutants as '<outcome> <hex>' lines to \
                   $(docv) (the test/golden/der_fuzz.seeds format).")
  in
  let run iters seed max_mutations scale jobs fmt out seeds_out no_intern =
    apply_intern no_intern;
    if jobs < 1 then `Error (true, "--jobs must be >= 1")
    else if iters < 0 then `Error (true, "--iters must be >= 0")
    else if max_mutations < 1 then `Error (true, "--max-mutations must be >= 1")
    else
      with_lab scale (fun pop ->
          (* The corpus: every distinct certificate the lab universe serves,
             deduplicated by fingerprint, in first-appearance order. *)
          let seen = Hashtbl.create 1024 in
          let rev_corpus = ref [] in
          Array.iter
            (fun r ->
              List.iter
                (fun c ->
                  let fp = Cert.fingerprint c in
                  if not (Hashtbl.mem seen fp) then begin
                    Hashtbl.add seen fp ();
                    rev_corpus := Cert.to_der c :: !rev_corpus
                  end)
                r.Population.chain)
            pop.Population.domains;
          let corpus = Array.of_list (List.rev !rev_corpus) in
          with_store_par jobs (fun par ->
              match Derfuzz.check_corpus ~par corpus with
              | (i, d) :: _ as bad ->
                  Printf.eprintf
                    "derfuzz: decoders disagree on unmutated corpus cert %d: \
                     %s\n"
                    i d;
                  `Error
                    ( false,
                      Printf.sprintf
                        "%d corpus certificate(s) fail the two-decoder \
                         agreement precondition"
                        (List.length bad) )
              | [] ->
                  let report =
                    Derfuzz.run ~par ~max_mutations ~seed ~iters corpus
                  in
                  let ir = Derfuzz.report_ir report in
                  print_results fmt [ ir ];
                  Option.iter
                    (fun file ->
                      Out_channel.with_open_text file (fun oc ->
                          Out_channel.output_string oc
                            (Report.Json.pretty (Report.to_json ir));
                          Out_channel.output_char oc '\n'))
                    out;
                  Option.iter
                    (fun file ->
                      Out_channel.with_open_text file (fun oc ->
                          Printf.fprintf oc
                            "# chaoscheck derfuzz --seed %d --iters %d \
                             --max-mutations %d (corpus: %d certs)\n\
                             # <outcome-key> <mutant hex>\n"
                            seed iters max_mutations (Array.length corpus);
                          List.iter
                            (fun l ->
                              Out_channel.output_string oc l;
                              Out_channel.output_char oc '\n')
                            (Derfuzz.seed_lines report)))
                    seeds_out;
                  let divergences = Derfuzz.divergence_count report in
                  if divergences > 0 then
                    `Error
                      ( false,
                        Printf.sprintf "%d divergent mutant(s)" divergences )
                  else `Ok ()))
  in
  Cmd.v
    (Cmd.info "derfuzz"
       ~doc:"Differential byte-level DER fuzzing: corpus-seeded mutants \
             decoded through two independent decoders (lib/der vs lib/der2), \
             every disagreement classified. For structural chain-level \
             fuzzing of the client models, see $(b,fuzz).")
    Term.(ret (const run $ iters_arg $ seed_arg $ max_mutations_arg
               $ scale_arg $ jobs_pipeline_arg $ format_arg $ out_arg
               $ seeds_out_arg $ no_intern_arg))

let scan_cmd =
  let store_arg =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Persist the scanned corpus as an append-only, \
                   content-addressed chainstore under $(docv): every \
                   certificate once, one observation record per domain, the \
                   full trust environment, and a Merkle root over the \
                   observation log.")
  in
  let run scale jobs store fmt tls_format check_paper inject no_intern =
    apply_intern no_intern;
    if jobs < 1 then `Error (true, "--jobs must be >= 1")
    else
      with_lab scale (fun pop ->
          let analysis = Experiments.analyze ~jobs ~format:tls_format pop in
          let results =
            Experiments.scan_results (Experiments.view analysis)
          in
          let results =
            if inject then Report.inject_deviation results else results
          in
          print_results fmt results;
          (match store with
          | None -> ()
          | Some dir ->
              let s = Corpus.save ~dir analysis in
              Printf.eprintf
                "store: %d observation records, %d certificates, merkle root \
                 %s -> %s\n"
                s.Corpus.s_records s.Corpus.s_certs s.Corpus.s_root_hex dir);
          if check_paper then run_paper_check results else `Ok ())
  in
  Cmd.v
    (Cmd.info "scan"
       ~doc:"Run the two-vantage measurement scan and print the \
             chain-compliance tables (dataset, tables 3/5/7, section 5.2); \
             with --store, also persist the corpus for replay and audit. \
             Every chain is probed under BOTH Certificate-message framings \
             (--tls-format picks which parse feeds the dataset; output is \
             identical for either)")
    Term.(ret (const run $ scale_arg $ jobs_pipeline_arg $ store_arg
               $ format_arg $ tls_format_arg $ check_paper_arg
               $ inject_deviation_arg $ no_intern_arg))

let replay_cmd =
  let store_arg =
    Arg.(required & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Chainstore directory written by 'scan --store'.")
  in
  let run store jobs fmt check_paper no_index no_intern =
    apply_intern no_intern;
    if jobs < 1 then `Error (true, "--jobs must be >= 1")
    else
      match Corpus.load ~jobs ~use_index:(not no_index) store with
      | Error e -> `Error (false, e)
      | Ok loaded ->
          let view = Corpus.analyze ~jobs loaded in
          let results = Experiments.scan_results view in
          print_results fmt results;
          Printf.eprintf
            "replayed %d observation records (%d certificates, scale %g, \
             merkle root %s)\n"
            loaded.Corpus.l_records loaded.Corpus.l_certs
            loaded.Corpus.l_scale loaded.Corpus.l_root_hex;
          if check_paper then run_paper_check results else `Ok ()
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Re-run the compliance and differential-testing tables from a \
             persisted corpus, without regenerating the population; stdout \
             is byte-identical to the scan that wrote the store")
    Term.(ret (const run $ store_arg $ jobs_pipeline_arg $ format_arg
               $ check_paper_arg $ no_index_arg $ no_intern_arg))

(* --- classify: parsifal-style corpus query --- *)

let classify_cmd =
  let store_arg =
    Arg.(required & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Chainstore directory written by 'scan --store'.")
  in
  let run store fmt no_intern =
    apply_intern no_intern;
    match Corpus.load store with
    | Error e -> `Error (false, e)
    | Ok loaded ->
        let t = Classify.run loaded.Corpus.l_dataset.Scanner.domains in
        print_results fmt [ Classify.report t ];
        `Ok ()
  in
  Cmd.v
    (Cmd.info "classify"
       ~doc:"Classify every chain of a persisted corpus against \
             corpus-wide subject/issuer indexes (ordered, duplicates, \
             self-contained, transvalid, unbuildable, unused certificates) \
             and report TLS 1.2/1.3 Certificate-message decode agreement \
             and framing overhead")
    Term.(ret (const run $ store_arg $ format_arg $ no_intern_arg))

(* --- certmsg: encode a chain as a raw TLS Certificate message --- *)

let certmsg_cmd =
  let context_arg =
    Arg.(value & opt string ""
         & info [ "context" ] ~docv:"BYTES"
             ~doc:"certificate_request_context for the TLS 1.3 framing \
                   (at most 255 bytes; server certificates use the empty \
                   default). Rejected with --tls-format 1.2.")
  in
  let run path tls_format context no_intern =
    apply_intern no_intern;
    if context <> "" && tls_format = Certmsg.Tls12 then
      `Error (true, "--context requires --tls-format 1.3")
    else if String.length context > 255 then
      `Error (true, "--context must be at most 255 bytes")
    else
      match read_chain path with
      | Error e -> `Error (false, e)
      | Ok certs ->
          print_endline
            (Base64.encode
               (Certmsg.encode (Certmsg.of_certs ~context tls_format certs)));
          `Ok ()
  in
  Cmd.v
    (Cmd.info "certmsg"
       ~doc:"Encode a PEM chain as a raw TLS Certificate message \
             (base64 on stdout) in either wire framing — the payload format \
             of chaind's \"certmsg\" checks")
    Term.(ret (const run $ chain_arg $ tls_format_arg $ context_arg
               $ no_intern_arg))

(* --- diff: per-cell comparison of two persisted corpora --- *)

let diff_cmd =
  let store_a_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"STORE-A" ~doc:"First chainstore directory.")
  in
  let store_b_arg =
    Arg.(required & pos 1 (some string) None
         & info [] ~docv:"STORE-B" ~doc:"Second chainstore directory.")
  in
  let run a b jobs no_intern =
    apply_intern no_intern;
    if jobs < 1 then `Error (true, "--jobs must be >= 1")
    else
      match (Corpus.load a, Corpus.load b) with
      | Error e, _ -> `Error (false, a ^ ": " ^ e)
      | _, Error e -> `Error (false, b ^ ": " ^ e)
      | Ok la, Ok lb ->
          let results l =
            Experiments.table_results (Corpus.analyze ~jobs l)
          in
          let ra = results la and rb = results lb in
          (match Report.diff ra rb with
          | [] ->
              let cells = List.concat_map Report.flatten ra in
              Printf.printf "corpora agree (%d cells compared)\n"
                (List.length cells);
              `Ok ()
          | deltas ->
              List.iter
                (fun d ->
                  match (d.Report.d_a, d.Report.d_b) with
                  | Some va, Some vb ->
                      Printf.printf "%s: %s -> %s\n" d.Report.d_path va vb
                  | Some va, None ->
                      Printf.printf "%s: %s -> (absent)\n" d.Report.d_path va
                  | None, Some vb ->
                      Printf.printf "%s: (absent) -> %s\n" d.Report.d_path vb
                  | None, None -> ())
                deltas;
              `Error
                ( false,
                  Printf.sprintf "%d cell(s) differ" (List.length deltas) ))
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:"Replay the compliance tables (dataset overview, tables 3/5/7) \
             from two persisted corpora and report per-cell deltas by stable \
             cell path; identical corpora print nothing but a summary and \
             exit 0, any difference exits non-zero")
    Term.(ret (const run $ store_a_arg $ store_b_arg $ jobs_pipeline_arg
               $ no_intern_arg))

let audit_cmd =
  let store_arg =
    Arg.(required & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Chainstore directory to audit.")
  in
  let dry_run_arg =
    Arg.(value & flag
         & info [ "dry-run" ]
             ~doc:"Report findings without repairing (no truncation, no \
                   MANIFEST/ROOT rewrite).")
  in
  let samples_arg =
    Arg.(value & opt int 8
         & info [ "samples" ]
             ~doc:"Number of observation records whose Merkle inclusion \
                   proofs are verified (evenly spread).")
  in
  let run store dry_run samples jobs =
    if samples < 1 then `Error (true, "--samples must be >= 1")
    else if jobs < 1 then `Error (true, "--jobs must be >= 1")
    else begin
      let r =
        with_store_par jobs (fun par ->
            Corpus.Store.audit ~par ~repair:(not dry_run) ~samples store)
      in
      List.iter print_endline r.Corpus.Store.a_messages;
      if r.Corpus.Store.a_repaired then print_endline "store repaired";
      if r.Corpus.Store.a_ok then begin
        print_endline "audit ok";
        `Ok ()
      end
      else `Error (false, "audit found unrecoverable damage")
    end
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"Verify a corpus store: segment CRCs, record counts, offset \
             indexes, the persisted Merkle layers, the Merkle root and its \
             authentication tag, and sampled inclusion proofs; a truncated \
             segment tail (crash artifact) is repaired by cutting back to \
             the last whole record — and stale sidecars rebuilt — unless \
             --dry-run. Segment scanning and tree building fan out over \
             --jobs Domains.")
    Term.(ret (const run $ store_arg $ dry_run_arg $ samples_arg
               $ jobs_pipeline_arg))

(* --- get / proof / mkstore / compact: direct store operations --- *)

let store_dir_arg =
  Arg.(required & opt (some string) None
       & info [ "store" ] ~docv:"DIR" ~doc:"Chainstore directory.")

let segment_arg =
  let seg =
    Arg.enum
      [ ("obs", Corpus.Store.Obs); ("certs", Corpus.Store.Certs);
        ("env", Corpus.Store.Env) ]
  in
  Arg.(value & opt seg Corpus.Store.Obs
       & info [ "seg" ] ~docv:"SEGMENT"
           ~doc:"Which segment to read: $(b,obs), $(b,certs) or $(b,env).")

let get_cmd =
  let index_arg =
    Arg.(required & pos 0 (some int) None
         & info [] ~docv:"INDEX" ~doc:"Record index (0-based).")
  in
  let seq_arg =
    Arg.(value & flag
         & info [ "seq" ]
             ~doc:"Fetch by sequentially decoding the segment instead of \
                   through the offset index (the reference path; bytes are \
                   identical).")
  in
  let run store seg i seq =
    let fetch = if seq then Corpus.Store.read_record_seq else Corpus.Store.read_record_at in
    match fetch store seg i with
    | Error e -> `Error (false, e)
    | Ok payload ->
        print_string payload;
        `Ok ()
  in
  Cmd.v
    (Cmd.info "get"
       ~doc:"Dump one record's raw payload bytes to stdout. The default \
             path seeks straight to the record through the per-segment \
             offset index (O(1) I/O, CRC-verified); --seq takes the \
             sequential reference path. A missing or stale index silently \
             falls back to the sequential scan — the segment always wins.")
    Term.(ret (const run $ store_dir_arg $ segment_arg $ index_arg $ seq_arg))

let proof_cmd =
  let index_arg =
    Arg.(required & pos 0 (some int) None
         & info [] ~docv:"INDEX" ~doc:"Observation record index (0-based).")
  in
  let run store i =
    match Corpus.Store.inclusion_proof store i with
    | Error e -> `Error (false, e)
    | Ok p ->
        Printf.printf "record %d of %d\n" p.Corpus.Store.p_index
          p.Corpus.Store.p_count;
        Printf.printf "root %s\n" p.Corpus.Store.p_root_hex;
        Printf.printf "leaf %s\n"
          (Chaoschain_crypto.Hex.encode p.Corpus.Store.p_leaf);
        List.iteri
          (fun l h ->
            Printf.printf "path[%d] %s\n" l (Chaoschain_crypto.Hex.encode h))
          p.Corpus.Store.p_path;
        print_endline "proof ok";
        `Ok ()
  in
  Cmd.v
    (Cmd.info "proof"
       ~doc:"Emit (and verify) the Merkle inclusion proof connecting one \
             observation record to the store's authenticated ROOT. Served \
             from the persisted tree.mrk layers and the offset index — \
             O(log n) work, no tree rebuild — falling back to a full \
             rebuild from obs.seg if the layer file is missing or stale.")
    Term.(ret (const run $ store_dir_arg $ index_arg))

let mkstore_cmd =
  let records_arg =
    Arg.(value & opt int 100_000
         & info [ "records"; "n" ] ~doc:"Observation records to write.")
  in
  let certs_arg =
    Arg.(value & opt int 64
         & info [ "certs" ] ~doc:"Distinct synthetic certificate blobs.")
  in
  let seed_arg =
    Arg.(value & opt int 4242 & info [ "seed" ] ~doc:"PRNG seed.")
  in
  let jobs_arg =
    Arg.(value & opt int 1
         & info [ "jobs"; "j" ]
             ~doc:"Domain-pool size for the Merkle build at close.")
  in
  let run store records certs seed jobs =
    if records < 0 then `Error (true, "--records must be >= 0")
    else if certs < 1 then `Error (true, "--certs must be >= 1")
    else if jobs < 1 then `Error (true, "--jobs must be >= 1")
    else begin
      (* Synthetic but deterministic: payloads are PRNG bytes, so the
         store exercises the full frame/index/Merkle machinery at any
         size without generating a population. Not a corpus — replay
         will not decode it, but audit/get/proof treat it exactly like
         the real thing. *)
      let rng = Chaoschain_crypto.Prng.create (Int64.of_int seed) in
      let blob n =
        String.init n (fun _ -> Char.chr (Chaoschain_crypto.Prng.int rng 256))
      in
      let w = Corpus.Store.create store in
      for _ = 1 to certs do
        ignore (Corpus.Store.add_cert w (blob 600) : string)
      done;
      for _ = 1 to records do
        Corpus.Store.add_obs w (blob (24 + Chaoschain_crypto.Prng.int rng 40))
      done;
      Corpus.Store.add_env w (blob 128);
      let root_hex =
        with_store_par jobs (fun par ->
            Corpus.Store.close ~par w ~scale:1.0)
      in
      Printf.printf "mkstore: %d records, %d certs, merkle root %s -> %s\n"
        records certs root_hex store;
      `Ok ()
    end
  in
  Cmd.v
    (Cmd.info "mkstore"
       ~doc:"Write a synthetic chainstore of N deterministic PRNG records — \
             the scale harness for audit/get/proof benchmarks and CI (a \
             100k-record store in about a second, no population generation).")
    Term.(ret (const run $ store_dir_arg $ records_arg $ certs_arg $ seed_arg
               $ jobs_arg))

let compact_cmd =
  let run store jobs =
    if jobs < 1 then `Error (true, "--jobs must be >= 1")
    else
      with_store_par jobs (fun par ->
          match Corpus.Store.open_ ~par store with
          | Error e -> `Error (false, e)
          | Ok st -> (
              match Corpus.referenced_fps st with
              | exception Chaoschain_store.Frame.Wire.Short ->
                  `Error
                    ( false,
                      "store records are not corpus-encoded (synthetic \
                       mkstore output?); nothing to compact against" )
              | live_tbl -> (
              match
                Corpus.Store.compact ~par ~live:(Hashtbl.mem live_tbl) store
              with
              | Error e -> `Error (false, e)
              | Ok r ->
                  Printf.printf
                    "compact: kept %d, dropped %d, certs.seg %d -> %d bytes\n"
                    r.Corpus.Store.c_kept r.Corpus.Store.c_dropped
                    r.Corpus.Store.c_bytes_before r.Corpus.Store.c_bytes_after;
                  `Ok ())))
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:"Rewrite the content-addressed certificate segment keeping only \
             certificates still referenced by an observation or environment \
             record (orphans appear when audit truncates a damaged tail). \
             Append order is preserved, certs.idx and MANIFEST are \
             rewritten, and ROOT's self-authentication is untouched — the \
             Merkle tree covers the observation log, which compaction never \
             touches.")
    Term.(ret (const run $ store_dir_arg $ jobs_pipeline_arg))

(* --- serve (chaind) --- *)

(* Shared by serve and loadgen: both event loops run on the pluggable
   readiness backend. *)
let poller_arg =
  let backend_conv =
    Arg.enum [ ("auto", `Auto); ("select", `Select); ("epoll", `Epoll) ]
  in
  Arg.(value & opt backend_conv `Auto
       & info [ "poller" ]
           ~doc:"Readiness backend for the event loop: $(b,select) \
                 (portable, FD_SETSIZE-bounded), $(b,epoll) (Linux), or \
                 $(b,auto) = epoll where available, else select.")

let serve_cmd =
  let cache_arg =
    Arg.(value & opt int 1024
         & info [ "cache" ]
             ~doc:"Verdict LRU-cache capacity (entries; 0 disables caching).")
  in
  let max_frame_arg =
    Arg.(value & opt int Service.Transport.default_max_frame
         & info [ "max-frame" ]
             ~doc:"Longest accepted request line in bytes; longer lines are \
                   dropped with a structured 'overlong' error instead of \
                   being buffered.")
  in
  let warm_store_arg =
    Arg.(value & opt (some string) None
         & info [ "warm-store" ] ~docv:"DIR"
             ~doc:"Pre-fill the verdict cache and the certificate intern \
                   table from a chainstore corpus written by 'scan --store' \
                   (must match --scale), and report a 'store' block in \
                   stats replies.")
  in
  let queue_arg =
    Arg.(value & opt int 64
         & info [ "queue" ]
             ~doc:"Admission-queue bound; frames arriving past it are \
                   rejected with an 'overloaded' reply instead of buffered.")
  in
  let batch_arg =
    Arg.(value & opt int 8
         & info [ "batch" ]
             ~doc:"Micro-batch size: queued requests are drained in groups \
                   of up to this many and processed in parallel.")
  in
  let jobs_arg =
    Arg.(value & opt int (Pipeline.default_jobs ())
         & info [ "jobs"; "j" ]
             ~doc:"Worker-Domain pool size for micro-batch processing \
                   (verdicts are identical for every value).")
  in
  let listen_arg =
    Arg.(value & opt (some string) None
         & info [ "listen" ] ~docv:"ADDR"
             ~doc:"Serve many concurrent connections on $(docv) — \
                   $(b,unix:PATH), $(b,tcp:HOST:PORT) or $(b,HOST:PORT) — \
                   through the netd event loop instead of stdin/stdout. \
                   Verdicts are byte-identical to the stdio path (same \
                   engine, cache and batcher). SIGTERM/SIGINT drain \
                   gracefully.")
  in
  let max_conns_arg =
    Arg.(value & opt int Netloop.default_config.Netloop.max_conns
         & info [ "max-conns" ]
             ~doc:"Stop accepting while this many connections are live, \
                   per shard (netd only). 0 derives the bound from the \
                   active poller: FD_SETSIZE minus headroom under select, \
                   RLIMIT_NOFILE minus headroom under epoll.")
  in
  let shards_arg =
    Arg.(value & opt int 1
         & info [ "shards" ]
             ~doc:"Event-loop shards (netd only): each runs its own \
                   Domain, poller and engine over a share of the accepted \
                   connections (SO_REUSEPORT on TCP where available, else \
                   a round-robin accept dispatcher). Verdicts are \
                   byte-identical at every shard count.")
  in
  let write_buf_arg =
    Arg.(value & opt int Netloop.default_config.Netloop.write_bound
         & info [ "write-buf" ]
             ~doc:"Per-connection reply-buffer bound in bytes; a \
                   connection buffering more stops being read until it \
                   drains (netd only).")
  in
  let inbox_arg =
    Arg.(value & opt int Netloop.default_config.Netloop.inbox_bound
         & info [ "inbox" ]
             ~doc:"Global bound on parsed frames awaiting admission; all \
                   reading pauses past it (netd only).")
  in
  let run scale cache queue batch jobs max_frame warm_store tls_format
      no_intern listen max_conns write_buf inbox poller shards =
    apply_intern no_intern;
    if cache < 0 then `Error (true, "--cache must be >= 0")
    else if queue < 1 then `Error (true, "--queue must be >= 1")
    else if batch < 1 then `Error (true, "--batch must be >= 1")
    else if jobs < 1 then `Error (true, "--jobs must be >= 1")
    else if max_frame < 1 then `Error (true, "--max-frame must be >= 1")
    else if max_conns < 0 then
      `Error (true, "--max-conns must be >= 1 (or 0 = poller-derived)")
    else if write_buf < 1 then `Error (true, "--write-buf must be >= 1")
    else if inbox < 1 then `Error (true, "--inbox must be >= 1")
    else if shards < 1 then `Error (true, "--shards must be >= 1")
    else
      with_lab scale (fun pop ->
          let u = pop.Population.universe in
          let env =
            {
              Service.Engine.diff_env = Population.env pop;
              union_store = Chaoschain_pki.Universe.union_store u;
              program_store = Chaoschain_pki.Universe.store u;
              aia = Chaoschain_pki.Universe.aia u;
              find_scenario =
                (fun needle ->
                  match
                    List.find_opt (substring_match needle) scenario_names
                  with
                  | None -> None
                  | Some (_, scenario) ->
                      Option.map
                        (fun r -> (r.Population.domain, r.Population.chain))
                        (find_record pop scenario));
            }
          in
          let warm_corpus =
            match warm_store with
            | None -> Ok None
            | Some dir -> (
                match Corpus.load dir with
                | Error e -> Error e
                | Ok l ->
                    if l.Corpus.l_scale <> scale then
                      Error
                        (Printf.sprintf
                           "--warm-store was written at scale %g, serve is \
                            running at scale %g"
                           l.Corpus.l_scale scale)
                    else Ok (Some l))
          in
          match warm_corpus with
          | Error msg -> `Error (false, msg)
          | Ok warm_corpus ->
          (* One engine per netd shard (the stdio path always runs one).
             Each shard owns its queue, batcher, worker pool and LRU;
             across shards only the Mutex-guarded metrics and the
             process-wide intern table are shared, so verdicts stay
             byte-identical at every shard count. *)
          let n_engines = match listen with None -> 1 | Some _ -> shards in
          let engines =
            List.init n_engines (fun _ ->
                Service.Engine.create ~env ~cache_capacity:cache
                  ~queue_capacity:queue ~batch ~jobs
                  ?default_format:tls_format ())
          in
          let engine = List.hd engines in
          (match warm_corpus with
          | None -> ()
          | Some l ->
              let t0 = Unix.gettimeofday () in
              let warmed =
                Service.Engine.warm engine
                  (Array.to_list l.Corpus.l_dataset.Scanner.domains)
              in
              let dt = Unix.gettimeofday () -. t0 in
              let store_fields =
                [ ("records", Service.Json.Int l.Corpus.l_records);
                  ("certs", Service.Json.Int l.Corpus.l_certs);
                  ("root", Service.Json.String l.Corpus.l_root_hex);
                  ("warmed", Service.Json.Int warmed);
                  ("warm_seconds", Service.Json.Float dt) ]
              in
              (* The corpus's compliance tables ride along in stats replies
                 as structured report-IR JSON (cheap: no differential
                 testing). *)
              let experiments =
                Service.Json.List
                  (List.map Report.to_json
                     (Experiments.table_results (Corpus.analyze ~jobs:1 l)))
              in
              List.iter
                (fun e ->
                  (* warm once, replay the filled cache into the sibling
                     shards instead of recomputing per shard *)
                  if e != engine then Service.Engine.copy_cache engine e;
                  Service.Engine.set_store_stats e store_fields;
                  Service.Engine.set_experiments e experiments)
                engines;
              Printf.eprintf
                "warm-store: %d verdicts pre-computed from %d records in \
                 %.2fs\n%!"
                warmed l.Corpus.l_records dt);
          let finish () =
            List.iter Service.Engine.shutdown engines;
            Format.eprintf "%a@." Service.Metrics.pp_summary
              (Service.Engine.aggregate_metrics engines);
            let sum f = List.fold_left (fun acc e -> acc + f e) 0 engines in
            Format.eprintf "cache: %d/%d entries, %d evictions@."
              (sum Service.Engine.cache_size)
              (sum Service.Engine.cache_capacity)
              (sum Service.Engine.cache_evictions);
            let i = Chaoschain_pki.Intern.stats () in
            Format.eprintf "intern: %d certificates, %d/%d lookups reused@."
              i.Chaoschain_pki.Intern.entries i.Chaoschain_pki.Intern.hits
              i.Chaoschain_pki.Intern.lookups
          in
          match listen with
          | None ->
              Service.Engine.serve engine
                (module Service.Transport.Fd)
                (Service.Transport.Fd.stdio ~max_frame ());
              finish ();
              `Ok ()
          | Some spec -> (
              match Service.Netd.parse_addr spec with
              | Error msg ->
                  List.iter Service.Engine.shutdown engines;
                  `Error (false, msg)
              | Ok addr -> (
                  match Poller.choose poller with
                  | Error msg ->
                      List.iter Service.Engine.shutdown engines;
                      `Error (false, msg)
                  | Ok backend -> (
                      let config =
                        { Netloop.max_frame; max_conns;
                          write_bound = write_buf; inbox_bound = inbox }
                      in
                      let resolved_conns =
                        if max_conns = 0 then Poller.default_max_conns backend
                        else max_conns
                      in
                      Printf.eprintf
                        "chaind: listening on %s (%s poller, %d shard%s, up \
                         to %d connections per shard)\n%!"
                        (Service.Netd.addr_to_string addr)
                        (Poller.backend_name backend)
                        shards
                        (if shards = 1 then "" else "s")
                        resolved_conns;
                      match
                        Service.Netd.serve_listen ~config ~backend ~engines
                          addr
                      with
                      | Error msg ->
                          List.iter Service.Engine.shutdown engines;
                          `Error (false, msg)
                      | Ok ns ->
                          Printf.eprintf
                            "netd: %d connections accepted, %d frames, %d \
                             overlong, %d orphaned replies, %d accept \
                             failures\n\
                             %!"
                            ns.Netloop.accepted ns.Netloop.frames
                            ns.Netloop.overlong ns.Netloop.dropped_replies
                            ns.Netloop.accept_failures;
                          finish ();
                          `Ok ()))))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"chaind: answer chain-compliance queries over newline-delimited \
             JSON on stdin/stdout — or over many concurrent connections \
             with --listen — (verdict = analyze + difftest + recommend), \
             with LRU verdict caching, micro-batching and request metrics; \
             \"certmsg\" checks carry a raw TLS Certificate message in \
             either wire framing")
    Term.(ret (const run $ scale_arg $ cache_arg $ queue_arg $ batch_arg
               $ jobs_arg $ max_frame_arg $ warm_store_arg
               $ tls_format_opt_arg $ no_intern_arg $ listen_arg
               $ max_conns_arg $ write_buf_arg $ inbox_arg $ poller_arg
               $ shards_arg))

(* --- loadgen --- *)

let loadgen_cmd =
  let connect_arg =
    Arg.(required & opt (some string) None
         & info [ "connect" ] ~docv:"ADDR"
             ~doc:"The chaind listener to load — same spellings as serve \
                   --listen ($(b,unix:PATH), $(b,tcp:HOST:PORT), \
                   $(b,HOST:PORT)).")
  in
  let store_arg =
    Arg.(value & opt (some string) None
         & info [ "store" ] ~docv:"DIR"
             ~doc:"Replay request chains from a chainstore corpus written \
                   by 'scan --store': each record becomes a pem+domain \
                   check, cycled when --requests exceeds the record count.")
  in
  let frames_arg =
    Arg.(value & opt (some string) None
         & info [ "frames" ] ~docv:"FILE"
             ~doc:"Replay raw request lines from $(docv) (one JSON frame \
                   per line, cycled). Alternative to --store.")
  in
  let rate_arg =
    Arg.(value & opt float 200.0
         & info [ "rate" ]
             ~doc:"Offered load in requests/second. Open loop: request i \
                   is scheduled at t0 + i/rate no matter how fast the \
                   server answers, so queueing delay lands in the tail \
                   percentiles instead of being silently absorbed.")
  in
  let requests_arg =
    Arg.(value & opt int 1000
         & info [ "requests"; "n" ] ~doc:"Total requests to send.")
  in
  let conns_arg =
    Arg.(value & opt int 8
         & info [ "conns" ]
             ~doc:"Concurrent persistent connections; requests round-robin \
                   across them.")
  in
  let grace_arg =
    Arg.(value & opt float 10.0
         & info [ "grace" ]
             ~doc:"Seconds to wait for outstanding replies after the last \
                   request; stragglers past it count as dropped.")
  in
  let ramp_arg =
    Arg.(value & opt float 0.0
         & info [ "ramp" ]
             ~doc:"Open the --conns connections spread over this many \
                   seconds (connection j dials at t0 + ramp*j/conns) \
                   instead of all upfront; the request schedule is \
                   unaffected. A failed connect is counted and its share \
                   of requests dropped — the run continues.")
  in
  let max_frame_arg =
    Arg.(value & opt int Service.Transport.default_max_frame
         & info [ "max-frame" ] ~doc:"Longest accepted reply line in bytes.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Also write the report as report-IR JSON to $(docv) \
                   (e.g. BENCH_PR7.json).")
  in
  let replies_arg =
    Arg.(value & opt (some string) None
         & info [ "replies" ] ~docv:"FILE"
             ~doc:"Dump every raw reply line to $(docv) in request order \
                   (the CI byte-identity probe).")
  in
  let frame_fun_of_source store frames =
    match (store, frames) with
    | Some _, Some _ | None, None ->
        Error "exactly one of --store or --frames is required"
    | None, Some file -> (
        match In_channel.with_open_text file In_channel.input_lines with
        | lines -> (
            match List.filter (fun l -> String.trim l <> "") lines with
            | [] -> Error (file ^ " holds no request lines")
            | lines ->
                let arr = Array.of_list lines in
                Ok (fun i -> arr.(i mod Array.length arr)))
        | exception Sys_error e -> Error e)
    | Some dir, None -> (
        match Corpus.load dir with
        | Error e -> Error e
        | Ok l ->
            let records = l.Corpus.l_dataset.Scanner.domains in
            if Array.length records = 0 then Error "corpus holds no records"
            else begin
              let arr =
                Array.mapi
                  (fun i (domain, chain) ->
                    Service.Protocol.to_frame
                      {
                        Service.Protocol.id = Some (Printf.sprintf "q%d" i);
                        op =
                          Service.Protocol.Check
                            {
                              Service.Protocol.domain = Some domain;
                              pem = Some (Pem.encode_certs chain);
                              scenario = None;
                              certmsg = None;
                              format = None;
                              aia = true;
                              store = Service.Protocol.Union;
                              clients = None;
                            };
                      })
                  records
              in
              Ok (fun i -> arr.(i mod Array.length arr))
            end)
  in
  let is_error line =
    match Report.Json.of_string line with
    | Error _ -> true
    | Ok j -> (
        match Option.bind (Report.Json.member "ok" j) Report.Json.get_bool with
        | Some ok -> not ok
        | None -> true)
  in
  let report_of ~rate ~conns stats =
    let lat = stats.Loadgen.latencies_ms in
    let q p = Loadgen.quantile lat p in
    let fl v =
      Report.cell (Report.Cell.Float { value = v; digits = 2; suffix = "" })
    in
    let b =
      Report.Table.create ~title:"open-loop load"
        ~header:[ "metric"; "value" ]
    in
    Report.Table.row b [ Report.text "offered rate (req/s)"; fl rate ];
    Report.Table.row b [ Report.text "connections"; Report.int conns ];
    Report.Table.row b [ Report.text "requests sent"; Report.count stats.sent ];
    Report.Table.row b
      [ Report.text "replies received"; Report.count stats.received ];
    Report.Table.row b [ Report.text "ok"; Report.count stats.ok ];
    Report.Table.row b [ Report.text "errors"; Report.count stats.errors ];
    Report.Table.row b [ Report.text "dropped"; Report.count stats.dropped ];
    Report.Table.row b
      [ Report.text "connect errors"; Report.count stats.connect_errors ];
    Report.Table.row b [ Report.text "elapsed (s)"; fl stats.elapsed_s ];
    Report.Table.row b
      [ Report.text "throughput (replies/s)";
        fl
          (if stats.elapsed_s > 0.0 then
             Float.of_int stats.received /. stats.elapsed_s
           else 0.0) ];
    Report.Table.sep b;
    Report.Table.row b
      [ Report.text "latency mean (ms)"; fl (Loadgen.mean lat) ];
    Report.Table.row b [ Report.text "latency p50 (ms)"; fl (q 0.5) ];
    Report.Table.row b [ Report.text "latency p90 (ms)"; fl (q 0.9) ];
    Report.Table.row b [ Report.text "latency p99 (ms)"; fl (q 0.99) ];
    Report.Table.row b [ Report.text "latency p999 (ms)"; fl (q 0.999) ];
    Report.Table.row b
      [ Report.text "latency max (ms)"; fl (Array.fold_left max 0.0 lat) ];
    {
      Report.id = "loadgen";
      title = "loadgen: open-loop latency against chaind";
      blocks = [ Report.Table.block b ];
    }
  in
  let run connect store frames rate requests conns grace ramp max_frame fmt
      out replies poller =
    if rate <= 0.0 then `Error (true, "--rate must be > 0")
    else if requests < 1 then `Error (true, "--requests must be >= 1")
    else if conns < 1 then `Error (true, "--conns must be >= 1")
    else if grace < 0.0 then `Error (true, "--grace must be >= 0")
    else if ramp < 0.0 then `Error (true, "--ramp must be >= 0")
    else if max_frame < 1 then `Error (true, "--max-frame must be >= 1")
    else
      match Service.Netd.parse_addr connect with
      | Error msg -> `Error (false, msg)
      | Ok addr -> (
          match Poller.choose poller with
          | Error msg -> `Error (false, msg)
          | Ok backend -> (
          match frame_fun_of_source store frames with
          | Error msg -> `Error (false, msg)
          | Ok frame ->
              let reply_log =
                Option.map (fun _ -> Array.make requests None) replies
              in
              let capture =
                Option.map
                  (fun log seq line -> log.(seq) <- Some line)
                  reply_log
              in
              let config =
                {
                  Loadgen.dial = (fun () -> Service.Netd.dial addr);
                  conns;
                  rate;
                  requests;
                  max_frame;
                  is_error;
                  now = Unix.gettimeofday;
                  grace;
                  capture;
                  ramp;
                  backend;
                }
              in
              let stats = Loadgen.run config ~frame in
              let report = report_of ~rate ~conns stats in
              print_results fmt [ report ];
              Option.iter
                (fun file ->
                  Out_channel.with_open_text file (fun oc ->
                      Out_channel.output_string oc
                        (Report.Json.pretty (Report.to_json report));
                      Out_channel.output_char oc '\n'))
                out;
              (match (replies, reply_log) with
              | Some file, Some log ->
                  Out_channel.with_open_text file (fun oc ->
                      Array.iter
                        (function
                          | Some line ->
                              Out_channel.output_string oc line;
                              Out_channel.output_char oc '\n'
                          | None -> ())
                        log)
              | _ -> ());
              if stats.Loadgen.connect_errors > 0 then
                Printf.eprintf "loadgen: %d connection(s) failed to open\n%!"
                  stats.Loadgen.connect_errors;
              if stats.Loadgen.dropped > 0 then
                Printf.eprintf "loadgen: %d request(s) dropped\n%!"
                  stats.Loadgen.dropped;
              `Ok ()))
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Open-loop load generator against a chaind --listen endpoint: \
             replay corpus chains (or raw frames) at a target request rate \
             over N concurrent connections and report throughput plus \
             p50/p90/p99/p999 latency through the report IR")
    Term.(ret (const run $ connect_arg $ store_arg $ frames_arg $ rate_arg
               $ requests_arg $ conns_arg $ grace_arg $ ramp_arg
               $ max_frame_arg $ format_arg $ out_arg $ replies_arg
               $ poller_arg))

(* --- pollers --- *)

let pollers_cmd =
  let run () =
    List.iter
      (fun b ->
        if Poller.available b then print_endline (Poller.backend_name b))
      [ Poller.Select; Poller.Epoll ];
    `Ok ()
  in
  Cmd.v
    (Cmd.info "pollers"
       ~doc:"List the readiness backends available on this platform, one \
             per line (select is always present; epoll on Linux). CI gates \
             its epoll smoke runs on this output.")
    Term.(ret (const run $ const ()))

(* --- reproduce --- *)

let reproduce_cmd =
  let scale_arg =
    Arg.(value & opt float 0.05
         & info [ "scale" ] ~doc:"Population scale (1.0 = Tranco Top-1M).")
  in
  let only_arg =
    Arg.(value & opt (some string) None
         & info [ "only" ] ~doc:"Single experiment id (e.g. table5, figure4).")
  in
  let jobs_arg =
    Arg.(value & opt int (Pipeline.default_jobs ())
         & info [ "jobs"; "j" ]
             ~doc:"Domain-pool size for the measurement pipeline (1 = purely \
                   sequential; default: all cores). Output is identical for \
                   every value.")
  in
  let run scale only jobs fmt check_paper inject no_intern =
    apply_intern no_intern;
    if jobs < 1 then `Error (true, "--jobs must be >= 1")
    else begin
    let pop = Population.generate ~scale () in
    let analysis = Experiments.analyze ~jobs pop in
    let results = Experiments.run_all analysis in
    let selected =
      match only with
      | None -> results
      | Some id -> List.filter (fun r -> r.Experiments.id = id) results
    in
    if selected = [] then `Error (false, "unknown experiment id")
    else begin
      let selected =
        if inject then Report.inject_deviation selected else selected
      in
      print_results fmt selected;
      if check_paper then run_paper_check selected else `Ok ()
    end
    end
  in
  Cmd.v
    (Cmd.info "reproduce" ~doc:"Regenerate the paper's tables and figures")
    Term.(ret (const run $ scale_arg $ only_arg $ jobs_arg $ format_arg
               $ check_paper_arg $ inject_deviation_arg $ no_intern_arg))

let () =
  let doc = "Web PKI certificate-chain deployment and construction analysis" in
  let info = Cmd.info "chaoscheck" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ scenario_cmd; analyze_cmd; difftest_cmd; matrix_cmd; recommend_cmd;
            fuzz_cmd; derfuzz_cmd; scan_cmd; replay_cmd; classify_cmd;
            diff_cmd; audit_cmd;
            get_cmd; proof_cmd; mkstore_cmd; compact_cmd; certmsg_cmd;
            serve_cmd; loadgen_cmd; pollers_cmd; reproduce_cmd ]))
